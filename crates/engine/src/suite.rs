//! The benchmark problems, packaged as optimizer-ready evaluators.
//!
//! This module lives in the engine crate (the campaign executor builds
//! instances inside worker threads, so the evaluators carry a `Send`
//! bound); `krigeval-bench` re-exports it for its binaries and tests.

use krigeval_core::evaluator::{AccuracyEvaluator, EvalError};
use krigeval_core::hybrid::AuditMetric;
use krigeval_core::opt::descent::DescentOptions;
use krigeval_core::opt::minplusone::MinPlusOneOptions;
use krigeval_core::Config;
use krigeval_kernels::{
    dct::DctBenchmark, fft::FftBenchmark, fir::FirBenchmark, hevc::HevcMcBenchmark,
    iir::IirBenchmark, lms::LmsBenchmark, WordLengthBenchmark,
};
use krigeval_neural::{QuantizedNetBenchmark, SensitivityBenchmark};

use crate::Scale;

/// Which of the paper's five benchmarks to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Problem {
    /// 64-tap FIR, `Nv = 2`, noise-power metric.
    Fir,
    /// 8th-order IIR, `Nv = 5`, noise-power metric.
    Iir,
    /// 64-point FFT, `Nv = 10`, noise-power metric.
    Fft,
    /// HEVC motion compensation, `Nv = 23`, noise-power metric.
    Hevc,
    /// SqueezeNet-style sensitivity analysis, `Nv = 10`, classification
    /// rate metric.
    Squeezenet,
    /// Extension (not in the paper's table): fixed-point **quantized
    /// inference** of the CNN — word-length DSE with the `p_cl` metric,
    /// demonstrating the method's metric-independence from the other side.
    QuantizedCnn,
    /// Extension: 8×8 2-D DCT (`Nv = 4`, noise power).
    Dct,
    /// Extension: LMS adaptive filter (`Nv = 3`, noise power) — a feedback
    /// system whose accuracy surface stresses kriging.
    Lms,
}

impl Problem {
    /// All five problems in the paper's Table I order.
    pub fn all() -> [Problem; 5] {
        [
            Problem::Fir,
            Problem::Iir,
            Problem::Fft,
            Problem::Hevc,
            Problem::Squeezenet,
        ]
    }

    /// The paper's five problems plus this reproduction's extension
    /// benchmarks (quantized CNN inference, DCT, LMS).
    pub fn extended() -> [Problem; 8] {
        [
            Problem::Fir,
            Problem::Iir,
            Problem::Fft,
            Problem::Hevc,
            Problem::Squeezenet,
            Problem::QuantizedCnn,
            Problem::Dct,
            Problem::Lms,
        ]
    }

    /// The canonical benchmark names [`Problem::parse`] accepts, one per
    /// problem in [`Problem::extended`] order — the vocabulary error
    /// messages cite so an unknown name tells the user what would have
    /// worked.
    pub fn accepted_names() -> [&'static str; 8] {
        [
            "fir",
            "iir",
            "fft",
            "hevc",
            "squeezenet",
            "quantized_cnn",
            "dct",
            "lms",
        ]
    }

    /// Parses a benchmark name (as accepted by the binaries' `--bench`).
    pub fn parse(name: &str) -> Option<Problem> {
        match name.to_ascii_lowercase().as_str() {
            "fir" | "fir64" => Some(Problem::Fir),
            "iir" | "iir8" => Some(Problem::Iir),
            "fft" | "fft64" => Some(Problem::Fft),
            "hevc" | "hevc_mc" => Some(Problem::Hevc),
            "squeezenet" | "cnn" => Some(Problem::Squeezenet),
            "quantized" | "qcnn" | "quantized_cnn" => Some(Problem::QuantizedCnn),
            "dct" | "dct8x8" => Some(Problem::Dct),
            "lms" => Some(Problem::Lms),
            _ => None,
        }
    }

    /// Table I's benchmark label.
    pub fn label(&self) -> &'static str {
        match self {
            Problem::Fir => "fir64",
            Problem::Iir => "iir8",
            Problem::Fft => "fft64",
            Problem::Hevc => "hevc_mc",
            Problem::Squeezenet => "squeezenet",
            Problem::QuantizedCnn => "quantized_cnn",
            Problem::Dct => "dct8x8",
            Problem::Lms => "lms",
        }
    }

    /// Table I's metric label.
    pub fn metric_label(&self) -> &'static str {
        match self {
            Problem::Squeezenet | Problem::QuantizedCnn => "class. rate",
            _ => "noise power",
        }
    }

    /// Number of optimization variables `Nv`.
    pub fn nv(&self) -> usize {
        match self {
            Problem::Fir => 2,
            Problem::Iir => 5,
            Problem::Fft => 10,
            Problem::Hevc => 23,
            Problem::Squeezenet | Problem::QuantizedCnn => 10,
            Problem::Dct => 4,
            Problem::Lms => 3,
        }
    }

    /// How audit-mode errors are expressed for this problem (Eq. 11 bits
    /// for noise power, Eq. 12 relative difference otherwise).
    pub fn audit_metric(&self) -> AuditMetric {
        match self {
            Problem::Squeezenet | Problem::QuantizedCnn => AuditMetric::Relative,
            _ => AuditMetric::NoisePowerDb,
        }
    }
}

/// A packaged optimization problem: the evaluator plus the optimizer
/// parameters the paper uses for it.
pub struct ProblemInstance {
    /// Which problem this is.
    pub problem: Problem,
    /// The simulation evaluator (`λ = evaluateAccuracy(I, w)`). `Send` so
    /// campaign workers can build and drive instances on their own threads.
    pub evaluator: Box<dyn AccuracyEvaluator + Send>,
    /// min+1 options — `Some` for the four word-length problems.
    pub minplusone: Option<MinPlusOneOptions>,
    /// Descent options — `Some` for the sensitivity problem.
    pub descent: Option<DescentOptions>,
}

/// Builds a problem instance at the requested scale with the repository's
/// fixed per-benchmark seeds (equivalent to [`build_seeded`] with
/// `seed = 0`).
///
/// The accuracy constraints follow the paper where stated (−50 dB for HEVC
/// and FFT) and are placed mid-range elsewhere (−35 dB FIR, −45 dB IIR,
/// `p_cl ≥ 0.9` for SqueezeNet, matching "the aim ... maximal power ... for
/// a targeted value of p_cl") so the optimizer trajectories have the
/// paper-like lengths that make the interpolated-fraction statistics
/// meaningful.
pub fn build(problem: Problem, scale: Scale) -> ProblemInstance {
    build_seeded(problem, scale, 0)
}

/// Like [`build`] but perturbs the benchmark's input-data seed with `seed`
/// (XOR), so campaign repeats can draw statistically independent instances
/// while `seed = 0` reproduces the canonical ones exactly.
pub fn build_seeded(problem: Problem, scale: Scale, seed: u64) -> ProblemInstance {
    match problem {
        Problem::Fir => {
            let bench = match scale {
                Scale::Fast => FirBenchmark::new(64, 0.2, 512, 0xF1E6_4001 ^ seed),
                Scale::Paper => FirBenchmark::new(64, 0.2, 4096, 0xF1E6_4001 ^ seed),
            };
            wl_instance(problem, bench, 28.0)
        }
        Problem::Iir => {
            let bench = match scale {
                Scale::Fast => IirBenchmark::new(8, 0.1, 1024, 0x11E8_0002 ^ seed),
                Scale::Paper => IirBenchmark::new(8, 0.1, 4096, 0x11E8_0002 ^ seed),
            };
            wl_instance(problem, bench, 45.0)
        }
        Problem::Fft => {
            let bench = match scale {
                Scale::Fast => FftBenchmark::new(8, 0xFF7_0003 ^ seed),
                Scale::Paper => FftBenchmark::new(64, 0xFF7_0003 ^ seed),
            };
            wl_instance(problem, bench, 50.0)
        }
        Problem::Hevc => {
            let bench = match scale {
                Scale::Fast => HevcMcBenchmark::new(48, 9, 0x4EC0_0004 ^ seed),
                Scale::Paper => HevcMcBenchmark::new(96, 24, 0x4EC0_0004 ^ seed),
            };
            wl_instance(problem, bench, 50.0)
        }
        Problem::Dct => {
            let bench = match scale {
                Scale::Fast => DctBenchmark::new(8, 0xDC78_0005 ^ seed),
                Scale::Paper => DctBenchmark::new(32, 0xDC78_0005 ^ seed),
            };
            wl_instance(problem, bench, 45.0)
        }
        Problem::Lms => {
            let bench = match scale {
                Scale::Fast => LmsBenchmark::new(8, 1024, 0.04, 0x1335_0006 ^ seed),
                Scale::Paper => LmsBenchmark::new(8, 2048, 0.04, 0x1335_0006 ^ seed),
            };
            wl_instance(problem, bench, 40.0)
        }
        Problem::QuantizedCnn => {
            let bench = match scale {
                Scale::Fast => QuantizedNetBenchmark::new(48, 12, 0xBEE5 ^ seed),
                Scale::Paper => QuantizedNetBenchmark::new(400, 16, 0xBEE5 ^ seed),
            };
            ProblemInstance {
                problem,
                minplusone: Some(MinPlusOneOptions {
                    lambda_min: 0.92,
                    w_floor: 3,
                    w_max: 16,
                    max_iterations: 10_000,
                }),
                descent: None,
                evaluator: Box::new(QuantizedCnnEvaluator::new(bench)),
            }
        }
        Problem::Squeezenet => {
            let bench = match scale {
                Scale::Fast => SensitivityBenchmark::new(48, 12, 0x59EE_2E05 ^ seed),
                Scale::Paper => SensitivityBenchmark::new(400, 16, 0x59EE_2E05 ^ seed),
            };
            let evaluator = SensitivityEvaluator::new(bench);
            ProblemInstance {
                problem,
                evaluator: Box::new(evaluator),
                minplusone: None,
                descent: Some(DescentOptions {
                    lambda_min: 0.9,
                    level_floor: 0,
                    level_max: 12,
                    max_iterations: 10_000,
                }),
            }
        }
    }
}

fn wl_instance<B>(problem: Problem, bench: B, lambda_min: f64) -> ProblemInstance
where
    B: WordLengthBenchmark + Send + 'static,
{
    ProblemInstance {
        problem,
        minplusone: Some(MinPlusOneOptions {
            lambda_min,
            w_floor: bench.min_word_length(),
            w_max: bench.max_word_length(),
            max_iterations: 10_000,
        }),
        descent: None,
        evaluator: Box::new(WlEvaluator::new(bench)),
    }
}

/// Adapts a [`WordLengthBenchmark`] to the core [`AccuracyEvaluator`].
pub struct WlEvaluator<B> {
    bench: B,
    count: u64,
}

impl<B: WordLengthBenchmark> WlEvaluator<B> {
    /// Wraps a kernel benchmark.
    pub fn new(bench: B) -> WlEvaluator<B> {
        WlEvaluator { bench, count: 0 }
    }
}

impl<B: WordLengthBenchmark> AccuracyEvaluator for WlEvaluator<B> {
    fn evaluate(&mut self, config: &Config) -> Result<f64, EvalError> {
        self.count += 1;
        self.bench.accuracy_db(config).map_err(EvalError::wrap)
    }

    fn num_variables(&self) -> usize {
        self.bench.num_variables()
    }

    fn evaluations(&self) -> u64 {
        self.count
    }
}

/// dB value of an error-source level: levels `0..=12` span −80…−8 dB in
/// 6 dB steps (noise-to-signal ratio relative to each layer's activation
/// power). The floor is quiet enough that all margins survive, so the
/// descent optimizer's starting configuration is always feasible.
pub fn level_to_db(level: i32) -> f64 {
    -80.0 + 6.0 * f64::from(level)
}

/// Adapts the [`SensitivityBenchmark`] to the core [`AccuracyEvaluator`]:
/// configurations are integer level vectors, mapped through
/// [`level_to_db`]; the metric is `p_cl`.
pub struct SensitivityEvaluator {
    bench: SensitivityBenchmark,
    count: u64,
}

impl SensitivityEvaluator {
    /// Wraps a sensitivity benchmark.
    pub fn new(bench: SensitivityBenchmark) -> SensitivityEvaluator {
        SensitivityEvaluator { bench, count: 0 }
    }
}

impl AccuracyEvaluator for SensitivityEvaluator {
    fn evaluate(&mut self, config: &Config) -> Result<f64, EvalError> {
        self.count += 1;
        let powers: Vec<f64> = config.iter().map(|&l| level_to_db(l)).collect();
        self.bench
            .classification_rate(&powers)
            .map_err(EvalError::wrap)
    }

    fn num_variables(&self) -> usize {
        self.bench.num_sources()
    }

    fn evaluations(&self) -> u64 {
        self.count
    }
}

/// Adapts the [`QuantizedNetBenchmark`] to the core [`AccuracyEvaluator`]:
/// configurations are activation-register word-lengths; the metric is
/// `p_cl` against the double-precision reference.
pub struct QuantizedCnnEvaluator {
    bench: QuantizedNetBenchmark,
    count: u64,
}

impl QuantizedCnnEvaluator {
    /// Wraps a quantized-inference benchmark.
    pub fn new(bench: QuantizedNetBenchmark) -> QuantizedCnnEvaluator {
        QuantizedCnnEvaluator { bench, count: 0 }
    }
}

impl AccuracyEvaluator for QuantizedCnnEvaluator {
    fn evaluate(&mut self, config: &Config) -> Result<f64, EvalError> {
        self.count += 1;
        self.bench
            .classification_rate(config)
            .map_err(EvalError::wrap)
    }

    fn num_variables(&self) -> usize {
        self.bench.num_variables()
    }

    fn evaluations(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_labels() {
        for p in Problem::extended() {
            assert_eq!(Problem::parse(p.label()), Some(p));
        }
        assert_eq!(Problem::parse("nope"), None);
    }

    #[test]
    fn extension_problems_build_and_evaluate() {
        for p in [Problem::Dct, Problem::Lms, Problem::QuantizedCnn] {
            let mut inst = build(p, Scale::Fast);
            let nv = inst.evaluator.num_variables();
            assert_eq!(nv, p.nv());
            let wide = inst.evaluator.evaluate(&vec![14; nv]).unwrap();
            let narrow = inst.evaluator.evaluate(&vec![5; nv]).unwrap();
            assert!(wide > narrow, "{p:?}: wide {wide} <= narrow {narrow}");
        }
    }

    #[test]
    fn nv_matches_paper_table() {
        assert_eq!(Problem::Fir.nv(), 2);
        assert_eq!(Problem::Iir.nv(), 5);
        assert_eq!(Problem::Fft.nv(), 10);
        assert_eq!(Problem::Hevc.nv(), 23);
        assert_eq!(Problem::Squeezenet.nv(), 10);
    }

    #[test]
    fn build_produces_consistent_dimensions() {
        for p in [Problem::Fir, Problem::Iir] {
            let inst = build(p, Scale::Fast);
            assert_eq!(inst.evaluator.num_variables(), p.nv());
            assert!(inst.minplusone.is_some());
            assert!(inst.descent.is_none());
        }
        let s = build(Problem::Squeezenet, Scale::Fast);
        assert_eq!(s.evaluator.num_variables(), 10);
        assert!(s.descent.is_some());
    }

    #[test]
    fn wl_evaluator_returns_accuracy_db() {
        let mut inst = build(Problem::Fir, Scale::Fast);
        let high = inst.evaluator.evaluate(&vec![14, 14]).unwrap();
        let low = inst.evaluator.evaluate(&vec![6, 6]).unwrap();
        assert!(high > low);
        assert_eq!(inst.evaluator.evaluations(), 2);
    }

    #[test]
    fn sensitivity_evaluator_maps_levels() {
        let mut inst = build(Problem::Squeezenet, Scale::Fast);
        let quiet = inst.evaluator.evaluate(&vec![0; 10]).unwrap();
        let loud = inst.evaluator.evaluate(&vec![12; 10]).unwrap();
        assert!(quiet > loud, "quiet {quiet} <= loud {loud}");
        assert!(quiet > 0.9);
    }

    #[test]
    fn level_mapping_is_affine() {
        assert_eq!(level_to_db(0), -80.0);
        assert_eq!(level_to_db(12), -8.0);
    }

    #[test]
    fn build_seeded_zero_matches_build() {
        let mut a = build(Problem::Fir, Scale::Fast);
        let mut b = build_seeded(Problem::Fir, Scale::Fast, 0);
        let w = vec![9, 9];
        assert_eq!(
            a.evaluator.evaluate(&w).unwrap(),
            b.evaluator.evaluate(&w).unwrap()
        );
    }

    #[test]
    fn build_seeded_changes_the_instance() {
        let mut a = build_seeded(Problem::Fir, Scale::Fast, 1);
        let mut b = build_seeded(Problem::Fir, Scale::Fast, 2);
        let w = vec![9, 9];
        // Different input data → (almost surely) different noise estimates.
        assert_ne!(
            a.evaluator.evaluate(&w).unwrap(),
            b.evaluator.evaluate(&w).unwrap()
        );
    }

    // Satellite check: every evaluator the suite produces is Send, so
    // campaign workers can own instances on their threads.
    #[test]
    fn evaluators_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<WlEvaluator<FirBenchmark>>();
        assert_send::<WlEvaluator<IirBenchmark>>();
        assert_send::<WlEvaluator<FftBenchmark>>();
        assert_send::<WlEvaluator<HevcMcBenchmark>>();
        assert_send::<WlEvaluator<DctBenchmark>>();
        assert_send::<WlEvaluator<LmsBenchmark>>();
        assert_send::<SensitivityEvaluator>();
        assert_send::<QuantizedCnnEvaluator>();
        assert_send::<Box<dyn AccuracyEvaluator + Send>>();
        fn assert_instance_send(i: ProblemInstance) -> impl Send {
            i
        }
        let _ = assert_instance_send(build(Problem::Fir, Scale::Fast));
    }
}
