//! Process-level campaign sharding: deterministic run partitioning,
//! shard artifact parsing, and the byte-identical merge.
//!
//! A campaign expands into an ordered run list; `campaign shard
//! --index i --of n` executes only the runs whose expansion index
//! satisfies `index % n == i` (the [`shard_of`] partition — residue
//! classes, so the same function partitions identically at any `n` and
//! every shard receives an interleaved, load-balanced slice of the
//! grid). Each shard writes an independent flush-per-line journal whose
//! **first line is a [`ShardManifest`] header** identifying the
//! campaign (name, spec digest, total run count) and the shard's
//! position (`index` of `of`); `campaign merge` then reassembles the
//! shards into the single-process artifact.
//!
//! # Byte-identity
//!
//! The merged output is byte-identical to what one `campaign run` over
//! the full spec would have produced, because nothing a row contains
//! depends on *which process* ran it: fault fates are content-addressed
//! ([`crate::fault::FaultStream`]), every scheduling-dependent field is
//! nulled in deterministic output ([`crate::sink::SinkOptions`]), rows
//! are merged in expansion-index order by the same renderer the
//! single-process sink uses ([`crate::sink::write_rows`]), and the
//! summary trailer is recomputed from the merged rows exactly as the
//! single-process run computes it. The CI shard round-trip step and the
//! `shard_merge` integration suite pin this with `diff`.
//!
//! # Validation
//!
//! [`merge_shards`] refuses to produce a silently incomplete artifact:
//! every failure mode is a typed [`MergeError`] naming the offending
//! shard file — a missing or malformed manifest, shards from different
//! campaigns (name / spec digest / total-run mismatch), disagreeing
//! `of`, an out-of-range or duplicated shard index, a missing shard, a
//! row that does not belong to its shard's residue class, a duplicated
//! row, or a truncated shard (a run the manifest promises that no row
//! covers — the signature of a killed shard that was never resumed).

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize, Value};

use crate::sink::{render_line, FailureRecord, RunRecord, SinkOptions};
use crate::spec::{CampaignSpec, RunSpec};

/// The deterministic partition function: which shard (of `of`) owns run
/// `index`. Residue classes — stable under any `of`, disjoint and
/// exhaustive by construction (the property suite pins both).
pub fn shard_of(index: u64, of: u64) -> u64 {
    index % of.max(1)
}

/// Filters an expanded run list down to the runs shard `index` (of
/// `of`) owns.
pub fn shard_runs(runs: Vec<RunSpec>, index: u64, of: u64) -> Vec<RunSpec> {
    runs.into_iter()
        .filter(|run| shard_of(run.index, of) == index)
        .collect()
}

/// A stable 64-bit digest of the campaign spec (FNV-1a over its
/// canonical JSON), rendered as 16 hex digits. Shards of one campaign
/// carry the same digest; merging shards from different specs is a
/// typed error, not a silently mixed artifact.
pub fn spec_digest(spec: &CampaignSpec) -> String {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in spec.to_json().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

/// The identity header a shard file starts with: serialized as the
/// first JSONL line, tagged `"type": "shard"`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Campaign name from the spec.
    pub name: String,
    /// This shard's position in the partition (`0 <= index < of`).
    pub index: u64,
    /// Total number of shards in the partition.
    pub of: u64,
    /// [`spec_digest`] of the campaign spec every shard must share.
    pub spec_digest: String,
    /// Total runs in the **whole** campaign expansion (not this shard):
    /// lets the merge detect truncated shards without re-expanding the
    /// spec.
    pub total_runs: u64,
}

impl ShardManifest {
    /// Builds the manifest for shard `index` of `of` over `spec`, whose
    /// expansion has `total_runs` runs.
    pub fn new(spec: &CampaignSpec, index: u64, of: u64, total_runs: u64) -> ShardManifest {
        ShardManifest {
            name: spec.name.clone(),
            index,
            of,
            spec_digest: spec_digest(spec),
            total_runs,
        }
    }

    /// Renders the manifest as its JSONL header line.
    pub fn render(&self) -> String {
        render_line("shard", self.serialize_to_value(), SinkOptions::default())
            .expect("manifest serialization cannot fail")
    }

    /// The expansion indices this shard owns, in order.
    pub fn expected_indices(&self) -> impl Iterator<Item = u64> + '_ {
        (self.index..self.total_runs).step_by(self.of.max(1) as usize)
    }
}

/// Why a set of shard files cannot be merged (or a shard resumed). Every
/// variant names the offending file where one exists, so the remediation
/// is always one `ls` away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No shard files were given.
    NoShards,
    /// A file's first line is not a shard manifest.
    MissingManifest {
        /// The offending file.
        file: String,
        /// What was found instead.
        detail: String,
    },
    /// A shard belongs to a different campaign (or a different partition
    /// arity) than the first shard.
    SpecMismatch {
        /// The offending file.
        file: String,
        /// Which manifest field disagrees.
        field: &'static str,
        /// The value the first shard established.
        expected: String,
        /// The value this shard carries.
        found: String,
    },
    /// A manifest's shard index is not in `0..of`.
    IndexOutOfRange {
        /// The offending file.
        file: String,
        /// The out-of-range index.
        index: u64,
        /// The partition arity.
        of: u64,
    },
    /// Two files claim the same shard index.
    OverlappingShards {
        /// The second file claiming the index.
        file: String,
        /// The file that claimed it first.
        first_file: String,
        /// The contested shard index.
        index: u64,
    },
    /// A shard index in `0..of` has no file.
    MissingShard {
        /// The absent shard index.
        index: u64,
        /// The partition arity.
        of: u64,
    },
    /// A row whose index does not belong to its shard's residue class
    /// (or exceeds the campaign's run count).
    ForeignRow {
        /// The offending file.
        file: String,
        /// The trespassing row index.
        index: u64,
    },
    /// The same row index appears twice within one shard.
    DuplicateRow {
        /// The offending file.
        file: String,
        /// The duplicated row index.
        index: u64,
    },
    /// A run the manifest promises has no row — the shard was
    /// interrupted and never resumed to completion.
    TruncatedShard {
        /// The offending file.
        file: String,
        /// How many promised runs have no row.
        missing: u64,
        /// The lowest missing run index.
        first_missing: u64,
    },
    /// The shard's journal body failed to parse.
    Journal {
        /// The offending file.
        file: String,
        /// The parse error.
        detail: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard files to merge"),
            MergeError::MissingManifest { file, detail } => {
                write!(f, "{file}: not a shard artifact ({detail})")
            }
            MergeError::SpecMismatch {
                file,
                field,
                expected,
                found,
            } => write!(
                f,
                "{file}: shard belongs to a different campaign — \
                 {field} is {found:?}, other shards have {expected:?}"
            ),
            MergeError::IndexOutOfRange { file, index, of } => {
                write!(
                    f,
                    "{file}: shard index {index} is out of range for --of {of}"
                )
            }
            MergeError::OverlappingShards {
                file,
                first_file,
                index,
            } => write!(
                f,
                "{file}: overlapping shards — index {index} was already \
                 provided by {first_file}"
            ),
            MergeError::MissingShard { index, of } => {
                write!(
                    f,
                    "missing shard {index} of {of}: merge needs all {of} shard files"
                )
            }
            MergeError::ForeignRow { file, index } => write!(
                f,
                "{file}: row {index} does not belong to this shard's partition"
            ),
            MergeError::DuplicateRow { file, index } => {
                write!(f, "{file}: row {index} appears more than once")
            }
            MergeError::TruncatedShard {
                file,
                missing,
                first_missing,
            } => write!(
                f,
                "{file}: truncated shard — {missing} run(s) promised by the \
                 manifest have no row (first missing index {first_missing}); \
                 rerun it with --resume to completion before merging"
            ),
            MergeError::Journal { file, detail } => write!(f, "{file}: {detail}"),
        }
    }
}

impl Error for MergeError {}

/// One parsed shard artifact: its manifest and its rows, each sorted by
/// index.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFile {
    /// Where the shard was read from (used verbatim in errors).
    pub file: String,
    /// The identity header.
    pub manifest: ShardManifest,
    /// Completed runs, sorted by index.
    pub records: Vec<RunRecord>,
    /// Permanent failures, sorted by index.
    pub failures: Vec<FailureRecord>,
}

/// Parses the manifest header line of a shard file.
///
/// # Errors
///
/// Returns [`MergeError::MissingManifest`] when the first non-blank line
/// is absent, malformed, or not tagged `"shard"`.
pub fn parse_manifest(file: &str, text: &str) -> Result<ShardManifest, MergeError> {
    let missing = |detail: String| MergeError::MissingManifest {
        file: file.to_string(),
        detail,
    };
    let first = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| missing("the file is empty".to_string()))?;
    let value: Value =
        serde_json::from_str(first).map_err(|e| missing(format!("first line is not JSON: {e}")))?;
    let tag = value.get("type").and_then(Value::as_str).unwrap_or("");
    if tag != "shard" {
        return Err(missing(format!(
            "first line has type {tag:?}, expected \"shard\""
        )));
    }
    ShardManifest::deserialize_from_value(&value)
        .map_err(|e| missing(format!("malformed manifest: {e}")))
}

/// Parses a whole shard file: the manifest header plus its journal body
/// (run / failed rows in any order; a torn final line from a killed
/// writer is tolerated — the completeness check in [`merge_shards`]
/// reports the resulting gap as a truncated shard).
///
/// # Errors
///
/// Returns [`MergeError::MissingManifest`] or [`MergeError::Journal`].
pub fn parse_shard(file: impl Into<String>, text: &str) -> Result<ShardFile, MergeError> {
    let file = file.into();
    let manifest = parse_manifest(&file, text)?;
    let (records, failures) =
        crate::sink::load_journal(text).map_err(|detail| MergeError::Journal {
            file: file.clone(),
            detail: detail.to_string(),
        })?;
    Ok(ShardFile {
        file,
        manifest,
        records,
        failures,
    })
}

/// Validates a set of shards and merges their rows back into the
/// single-process order. All manifests must agree on the campaign
/// (name, spec digest, total runs) and the partition arity; every shard
/// index in `0..of` must appear exactly once; every row must belong to
/// its shard; every run a manifest promises must have a row. Returns
/// the merged `(records, failures)`, each sorted by index.
///
/// # Errors
///
/// Returns the first [`MergeError`] in validation order (manifest
/// consistency, then partition coverage, then per-shard row ownership
/// and completeness), naming the offending file.
pub fn merge_shards(
    shards: &[ShardFile],
) -> Result<(Vec<RunRecord>, Vec<FailureRecord>), MergeError> {
    let first = shards.first().ok_or(MergeError::NoShards)?;
    let reference = &first.manifest;
    // Manifest consistency: all shards describe the same campaign and
    // the same partition.
    for shard in shards {
        let m = &shard.manifest;
        let mismatch = |field: &'static str, expected: String, found: String| {
            Err(MergeError::SpecMismatch {
                file: shard.file.clone(),
                field,
                expected,
                found,
            })
        };
        if m.name != reference.name {
            return mismatch("name", reference.name.clone(), m.name.clone());
        }
        if m.spec_digest != reference.spec_digest {
            return mismatch(
                "spec_digest",
                reference.spec_digest.clone(),
                m.spec_digest.clone(),
            );
        }
        if m.of != reference.of {
            return mismatch("of", reference.of.to_string(), m.of.to_string());
        }
        if m.total_runs != reference.total_runs {
            return mismatch(
                "total_runs",
                reference.total_runs.to_string(),
                m.total_runs.to_string(),
            );
        }
        if m.index >= m.of {
            return Err(MergeError::IndexOutOfRange {
                file: shard.file.clone(),
                index: m.index,
                of: m.of,
            });
        }
    }
    // Partition coverage: each index exactly once, none missing.
    let mut claimed: Vec<Option<&str>> = vec![None; reference.of as usize];
    for shard in shards {
        let slot = &mut claimed[shard.manifest.index as usize];
        if let Some(first_file) = slot {
            return Err(MergeError::OverlappingShards {
                file: shard.file.clone(),
                first_file: (*first_file).to_string(),
                index: shard.manifest.index,
            });
        }
        *slot = Some(&shard.file);
    }
    if let Some(index) = claimed.iter().position(Option::is_none) {
        return Err(MergeError::MissingShard {
            index: index as u64,
            of: reference.of,
        });
    }
    // Row ownership and completeness, then merge.
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for shard in shards {
        let expected: BTreeSet<u64> = shard.manifest.expected_indices().collect();
        let mut seen = BTreeSet::new();
        let rows = shard
            .records
            .iter()
            .map(|r| r.index)
            .chain(shard.failures.iter().map(|f| f.index));
        for index in rows {
            if !expected.contains(&index) {
                return Err(MergeError::ForeignRow {
                    file: shard.file.clone(),
                    index,
                });
            }
            if !seen.insert(index) {
                return Err(MergeError::DuplicateRow {
                    file: shard.file.clone(),
                    index,
                });
            }
        }
        let missing: Vec<u64> = expected.difference(&seen).copied().collect();
        if let Some(&first_missing) = missing.first() {
            return Err(MergeError::TruncatedShard {
                file: shard.file.clone(),
                missing: missing.len() as u64,
                first_missing,
            });
        }
        records.extend(shard.records.iter().cloned());
        failures.extend(shard.failures.iter().cloned());
    }
    records.sort_by_key(|r| r.index);
    failures.sort_by_key(|f| f.index);
    Ok((records, failures))
}

/// Renders a finalized shard artifact: the manifest header, then the
/// shard's rows merged in index order by the same renderer the
/// single-process sink uses — no summary trailer (the merge recomputes
/// it over all shards).
pub fn render_shard(
    manifest: &ShardManifest,
    records: &[RunRecord],
    failures: &[FailureRecord],
    options: SinkOptions,
) -> String {
    let mut buf = Vec::new();
    use std::io::Write as _;
    writeln!(buf, "{}", manifest.render()).expect("in-memory write cannot fail");
    crate::sink::write_rows(&mut buf, records, failures, options)
        .expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("JSON output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            benchmarks: vec!["fir".to_string()],
            ..CampaignSpec::default()
        }
    }

    fn record(index: u64) -> RunRecord {
        RunRecord {
            index,
            benchmark: "fir64".to_string(),
            metric: "noise power".to_string(),
            scale: "fast".to_string(),
            optimizer: "auto".to_string(),
            variogram: "pilot".to_string(),
            nv: 2,
            d: 3.0,
            min_neighbors: 3,
            lambda_min: 28.0,
            seed: 0,
            repeat: 0,
            solution: vec![9, 8],
            lambda: 28.4,
            iterations: 7,
            queries: 40,
            simulated: 30,
            kriged: 8,
            session_cache_hits: 2,
            kriging_failures: 0,
            gate: "fixed".to_string(),
            gate_rejections: 0,
            p_percent: 20.0,
            mean_neighbors: 4.5,
            mean_variance: 0.6,
            audit_mean_eps: 0.2,
            audit_max_eps: 0.8,
            audit_count: 8,
            pilot_sims: 25,
            wall_ms: None,
        }
    }

    fn failure(index: u64) -> FailureRecord {
        FailureRecord {
            index,
            benchmark: "fir64".to_string(),
            scale: "fast".to_string(),
            d: 3.0,
            min_neighbors: 3,
            seed: 0,
            repeat: 0,
            error: "injected transient error (config [9, 8], attempt 0)".to_string(),
            attempts: 1,
        }
    }

    /// Builds shard `index` of `of` over a 4-run campaign, with every
    /// owned row present as a record (or, for indices in `fail`, a
    /// failure).
    fn shard(index: u64, of: u64, fail: &[u64]) -> ShardFile {
        let manifest = ShardManifest::new(&spec(), index, of, 4);
        let mut records = Vec::new();
        let mut failures = Vec::new();
        for i in manifest.expected_indices() {
            if fail.contains(&i) {
                failures.push(failure(i));
            } else {
                records.push(record(i));
            }
        }
        ShardFile {
            file: format!("shard-{index}.jsonl"),
            manifest,
            records,
            failures,
        }
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        for of in [1u64, 2, 3, 4, 7] {
            let mut owned = Vec::new();
            for index in 0..of {
                let m = ShardManifest::new(&spec(), index, of, 10);
                owned.extend(m.expected_indices());
            }
            owned.sort_unstable();
            assert_eq!(owned, (0..10).collect::<Vec<u64>>(), "of={of}");
        }
        assert_eq!(shard_of(7, 3), 1);
        assert_eq!(shard_of(7, 1), 0);
        assert_eq!(shard_of(7, 0), 0, "of is clamped to 1");
    }

    #[test]
    fn spec_digest_tracks_content() {
        let a = spec_digest(&spec());
        assert_eq!(a.len(), 16);
        assert_eq!(a, spec_digest(&spec()), "digest is stable");
        let other = CampaignSpec { seed: 1, ..spec() };
        assert_ne!(a, spec_digest(&other));
    }

    #[test]
    fn manifest_renders_and_reparses() {
        let m = ShardManifest::new(&spec(), 1, 3, 8);
        let line = m.render();
        assert!(line.starts_with("{\"type\":\"shard\",\"name\":\"table1\","));
        let back = parse_manifest("s.jsonl", &line).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn shard_artifact_roundtrips_through_parse() {
        let s = shard(1, 3, &[1]);
        let text = render_shard(&s.manifest, &s.records, &s.failures, SinkOptions::default());
        let back = parse_shard("shard-1.jsonl", &text).unwrap();
        assert_eq!(back.manifest, s.manifest);
        assert_eq!(back.records, s.records);
        assert_eq!(back.failures, s.failures);
    }

    #[test]
    fn merge_reassembles_single_process_order() {
        // Deliberately out of shard order: merge sorts by content.
        let shards = [shard(2, 3, &[]), shard(0, 3, &[0]), shard(1, 3, &[])];
        let (records, failures) = merge_shards(&shards).unwrap();
        assert_eq!(
            records.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            failures.iter().map(|f| f.index).collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn merge_names_the_offending_file() {
        assert_eq!(merge_shards(&[]).unwrap_err(), MergeError::NoShards);

        let mut foreign = shard(0, 3, &[]);
        foreign.records.push(record(1)); // belongs to shard 1
        let err = merge_shards(&[foreign, shard(1, 3, &[]), shard(2, 3, &[])]).unwrap_err();
        assert_eq!(
            err,
            MergeError::ForeignRow {
                file: "shard-0.jsonl".to_string(),
                index: 1,
            }
        );
        assert!(err.to_string().contains("shard-0.jsonl"), "{err}");

        let mut duplicated = shard(1, 3, &[]);
        duplicated.records.push(record(1));
        let err = merge_shards(&[shard(0, 3, &[]), duplicated, shard(2, 3, &[])]).unwrap_err();
        assert_eq!(
            err,
            MergeError::DuplicateRow {
                file: "shard-1.jsonl".to_string(),
                index: 1,
            }
        );

        let mut truncated = shard(2, 3, &[]);
        truncated.records.pop();
        let err = merge_shards(&[shard(0, 3, &[]), shard(1, 3, &[]), truncated]).unwrap_err();
        match err {
            MergeError::TruncatedShard {
                ref file,
                missing,
                first_missing,
            } => {
                assert_eq!(file, "shard-2.jsonl");
                assert_eq!(missing, 1);
                // The 4-run grid gives shard 2 exactly {2}; pop removed it.
                assert_eq!(first_missing, 2);
            }
            other => panic!("expected TruncatedShard, got {other:?}"),
        }
        assert!(err.to_string().contains("--resume"), "{err}");

        let err = merge_shards(&[shard(0, 3, &[]), shard(1, 3, &[])]).unwrap_err();
        assert_eq!(err, MergeError::MissingShard { index: 2, of: 3 });

        let mut twice = shard(1, 3, &[]);
        twice.file = "other-1.jsonl".to_string();
        let err = merge_shards(&[shard(0, 3, &[]), shard(1, 3, &[]), twice, shard(2, 3, &[])])
            .unwrap_err();
        assert_eq!(
            err,
            MergeError::OverlappingShards {
                file: "other-1.jsonl".to_string(),
                first_file: "shard-1.jsonl".to_string(),
                index: 1,
            }
        );

        let mut alien = shard(1, 3, &[]);
        alien.manifest.spec_digest = "0000000000000000".to_string();
        let err = merge_shards(&[shard(0, 3, &[]), alien, shard(2, 3, &[])]).unwrap_err();
        match err {
            MergeError::SpecMismatch {
                ref file, field, ..
            } => {
                assert_eq!(file, "shard-1.jsonl");
                assert_eq!(field, "spec_digest");
            }
            other => panic!("expected SpecMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("different campaign"), "{err}");

        let mut rogue = shard(1, 3, &[]);
        rogue.manifest.index = 9;
        let err = merge_shards(&[shard(0, 3, &[]), rogue, shard(2, 3, &[])]).unwrap_err();
        assert_eq!(
            err,
            MergeError::IndexOutOfRange {
                file: "shard-1.jsonl".to_string(),
                index: 9,
                of: 3,
            }
        );
    }

    #[test]
    fn parse_rejects_files_without_manifests() {
        let err = parse_manifest("x.jsonl", "").unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        let err = parse_manifest("x.jsonl", "not json\n").unwrap_err();
        assert!(err.to_string().contains("not JSON"), "{err}");
        let s = shard(0, 1, &[]);
        let headless = render_shard(&s.manifest, &s.records, &s.failures, SinkOptions::default())
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n");
        let err = parse_manifest("x.jsonl", &headless).unwrap_err();
        assert!(err.to_string().contains("type \"run\""), "{err}");
    }

    #[test]
    fn parse_tolerates_a_torn_tail() {
        let s = shard(0, 1, &[]);
        let mut text = render_shard(&s.manifest, &s.records, &s.failures, SinkOptions::default());
        text.push_str("{\"type\":\"run\",\"index\":9,\"ben");
        let parsed = parse_shard("torn.jsonl", &text).unwrap();
        assert_eq!(parsed.records.len(), s.records.len());
    }
}
