//! `campaign` — declarative experiment campaigns over the kriging engine.
//!
//! ```text
//! campaign template                 # print a spec template (JSON) to stdout
//! campaign run [OPTIONS]           # execute a campaign, emit JSONL
//! campaign matrix [OPTIONS]        # the full Table-I scenario matrix: all
//!                                  # eight benchmarks through the engine
//! campaign shard [OPTIONS]         # execute one shard of a campaign
//! campaign merge FILES [OPTIONS]   # reassemble shard files into one JSONL
//! campaign decode IN [OPTIONS]     # decompress a .z artifact to plain text
//! campaign table [OPTIONS]         # execute and render a Table-I-style table
//! campaign compare [OPTIONS]       # sequential vs parallel wall-clock
//! ```
//!
//! Common options:
//!
//! ```text
//! --spec FILE        load a CampaignSpec from a JSON file
//! --benchmarks LIST  comma-separated (fir,iir,fft,hevc,dct,lms,cnn,squeezenet)
//! --scale S          fast | paper            (default fast)
//! --d LIST           neighbour radii          (default 2,3,4,5)
//! --nmin LIST        minimum neighbour counts (default 3)
//! --lambda LIST      λ_min sweep (empty = canonical per benchmark)
//! --metric M         l1 | l2 | linf           (default l1)
//! --variogram V      pilot | fixed-linear:SLOPE | fit-after:N | refit:N:EVERY
//!                    | spherical:N:S:R | exponential:N:S:R | gaussian:N:S:R
//! --optimizer O      auto | minplusone | tiebreak:TOL | descent
//! --seed N           base seed                (default 0)
//! --repeats N        repeats per cell with derived seeds (default 1)
//! --workers N        worker threads, one run per worker (default 4)
//! --threads N        in-run evaluation threads: each run's planned
//!                    simulation batches fan out over N workers via the
//!                    engine backend (default 1 = inline backend; results
//!                    are identical for any value, including under active
//!                    fault injection — fault fates are content-addressed,
//!                    not call-ordered)
//! --approx N         opt-in approximate prediction: screen kriging
//!                    systems to the N closest neighbours, gated by a
//!                    leave-one-out accuracy check at refit time (off by
//!                    default; the exact path stays bitwise pinned)
//! --approx-epsilon E accuracy bound of the approximate path (default
//!                    0.05); a sampled leave-one-out deviation above E
//!                    rejects the approximation until revalidated
//! --gate G           kriged-vs-simulate decision gate: fixed (default,
//!                    bitwise-pinned historical behaviour) or
//!                    variance[:T] — reject any converged solve whose
//!                    kriging variance σ² exceeds T (default 1.0) and
//!                    simulate instead
//! --variance-threshold T
//!                    set (or override) the variance gate's threshold;
//!                    implies --gate variance
//! --loo-select       pick the variogram family by fast leave-one-out
//!                    cross-validation (one factorization per family)
//!                    instead of weighted least squares
//! --nugget P         noisy-metric support: auto estimates the nugget
//!                    from replicated observations, a number fixes it;
//!                    off by default (exact interpolating system)
//! --out FILE         write JSONL to FILE instead of stdout
//! --compress         DEFLATE-compress the artifact (journal and final
//!                    output); requires --out ending in .z — the
//!                    extension is how resume/shard/merge detect
//!                    compressed inputs. The journal stays crash-safe:
//!                    every line ends on a sync-flush block boundary,
//!                    and determinism is defined on the *uncompressed*
//!                    stream (campaign decode recovers it bit-exactly)
//! --on-error P       fail-fast | skip | retry:N  (default fail-fast;
//!                    overrides the spec's on_error field)
//! --resume           continue an interrupted campaign from the journal
//!                    in --out: rows already journalled are replayed,
//!                    only the missing runs execute (requires --out)
//! --timing           include wall-clock fields in the JSONL (off keeps
//!                    output byte-identical across worker counts and
//!                    resumes)
//! --metrics-out FILE write a campaign metrics snapshot on completion:
//!                    Prometheus text format when FILE ends in .prom,
//!                    JSON otherwise (counters only unless --timing)
//! --trace-out FILE   stream structured trace events (query decisions,
//!                    run completions, journal errors, ...) to FILE as
//!                    JSONL; wall-clock fields included only with
//!                    --timing
//! --quiet            suppress stderr progress lines
//! ```
//!
//! `shard`-only options:
//!
//! ```text
//! --index I          this process's shard index (0-based, required)
//! --of N             total number of shards (required)
//! ```
//!
//! `matrix`-only options:
//!
//! ```text
//! --smoke            the CI preset: fast scale, a single d=3 / N_n,min=2
//!                    cell, every run through the engine backend at two
//!                    threads (overrides the grid flags)
//! ```
//!
//! `campaign matrix` expands **all eight benchmarks** (fir, iir, fft,
//! hevc, squeezenet, quantized_cnn, dct, lms) over the `--d` / `--nmin`
//! grid — the classification-rate problems run with the nugget
//! estimator active — executes the whole matrix through one shared
//! cache, and emits a per-benchmark summary table (mean `p(%)`, mean
//! `με`). Structural violations of the Table-I shape (missing
//! benchmark, out-of-range percentage, wrong metric routing) are
//! reported on stderr and exit nonzero.
//!
//! With `--out`, `run` streams every completed row to the file as a
//! flushed journal line and rewrites the file in finalized form (rows
//! in index order plus the summary) on success — killing the process
//! mid-campaign leaves a valid journal for `--resume`.
//!
//! `shard` executes only the runs whose expansion index `i` satisfies
//! `i % N == I` (the same residue-class partition at any `N`), writing
//! an independent flush-per-line journal to `--out` (required) whose
//! first line is a shard manifest header; `--resume` revalidates the
//! header and continues an interrupted shard. `merge` takes the shard
//! files as positional arguments, validates them up front (same
//! campaign, same partition, no gaps, no overlaps, no truncation —
//! typed errors name the offending file) and emits the single-process
//! byte-identical JSONL: because fault fates are content-addressed and
//! deterministic output carries no scheduling fields, `merge` of `N`
//! shards reproduces `campaign run` byte for byte. `merge` always emits
//! deterministic (timing-off) output.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use krigeval_engine::executor::{run_campaign, run_specs_opts, ExecOptions, Progress};
use krigeval_engine::fault::FaultPolicy;
use krigeval_engine::matrix::{check_table_shape, render_matrix_table, summarize, MatrixSpec};
use krigeval_engine::obs::CampaignObs;
use krigeval_engine::shard::{
    merge_shards, parse_manifest, parse_shard, render_shard, shard_runs, ShardManifest,
};
use krigeval_engine::sink::{
    load_journal, read_artifact_text, to_jsonl_string_full, JournalWriter, SinkOptions,
};
use krigeval_engine::spec::{CampaignSpec, GatePolicy, NuggetPolicy, OptimizerSpec, VariogramSpec};
use krigeval_engine::{CacheStats, RunRecord, SummaryRecord};
use krigeval_obs::{JsonlSink, Registry, Tracer};

fn fail(message: &str) -> ExitCode {
    eprintln!("campaign: {message}");
    eprintln!("run `campaign help` for usage");
    ExitCode::FAILURE
}

fn parse_list<T: std::str::FromStr>(value: &str, flag: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse::<T>()
                .map_err(|_| format!("bad value {part:?} for {flag}"))
        })
        .collect()
}

fn parse_variogram(value: &str) -> Result<VariogramSpec, String> {
    let mut parts = value.split(':');
    let head = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    let arg = |i: usize| -> Result<&str, String> {
        args.get(i)
            .copied()
            .ok_or_else(|| format!("--variogram {head} needs more arguments"))
    };
    match head {
        "pilot" => Ok(VariogramSpec::Pilot),
        "fixed-linear" => Ok(VariogramSpec::FixedLinear {
            slope: arg(0)?.parse().map_err(|_| "bad slope".to_string())?,
        }),
        "fit-after" => Ok(VariogramSpec::FitAfter {
            min_samples: arg(0)?
                .parse()
                .map_err(|_| "bad sample count".to_string())?,
        }),
        "refit" => Ok(VariogramSpec::Refit {
            min_samples: arg(0)?
                .parse()
                .map_err(|_| "bad sample count".to_string())?,
            every: arg(1)?
                .parse()
                .map_err(|_| "bad refit stride".to_string())?,
        }),
        family @ ("spherical" | "exponential" | "gaussian") => {
            let num = |i: usize| -> Result<f64, String> {
                arg(i)?
                    .parse()
                    .map_err(|_| format!("bad {family} parameter"))
            };
            let (nugget, sill, range) = (num(0)?, num(1)?, num(2)?);
            let model = match family {
                "spherical" => krigeval_core::VariogramModel::spherical(nugget, sill, range),
                "exponential" => krigeval_core::VariogramModel::exponential(nugget, sill, range),
                _ => krigeval_core::VariogramModel::gaussian(nugget, sill, range),
            }
            .map_err(|e| e.to_string())?;
            Ok(VariogramSpec::Fixed { model })
        }
        other => Err(format!("unknown variogram policy {other:?}")),
    }
}

fn parse_optimizer(value: &str) -> Result<OptimizerSpec, String> {
    let (head, arg) = match value.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (value, None),
    };
    match head {
        "auto" => Ok(OptimizerSpec::Auto),
        "minplusone" => Ok(OptimizerSpec::MinPlusOne),
        "tiebreak" => Ok(OptimizerSpec::TieBreak {
            tolerance: arg
                .unwrap_or("0.0")
                .parse()
                .map_err(|_| "bad tie tolerance".to_string())?,
        }),
        "descent" => Ok(OptimizerSpec::Descent),
        other => Err(format!("unknown optimizer {other:?}")),
    }
}

struct Cli {
    spec: CampaignSpec,
    workers: usize,
    out: Option<String>,
    timing: bool,
    quiet: bool,
    resume: bool,
    /// DEFLATE-compress the journal and final artifact (`--out` must
    /// end in `.z`).
    compress: bool,
    /// `matrix`: use the CI smoke preset instead of the grid flags.
    smoke: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    /// `shard`: this process's partition slot (`--index`).
    shard_index: Option<u64>,
    /// `shard`: the partition arity (`--of`).
    shard_of: Option<u64>,
    /// Positional arguments (`merge`: the shard files).
    inputs: Vec<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        spec: CampaignSpec::default(),
        workers: 4,
        out: None,
        timing: false,
        quiet: false,
        resume: false,
        compress: false,
        smoke: false,
        metrics_out: None,
        trace_out: None,
        shard_index: None,
        shard_of: None,
        inputs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--spec" => {
                let path = value()?;
                let text =
                    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                cli.spec = CampaignSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            }
            "--benchmarks" => cli.spec.benchmarks = parse_list(value()?, "--benchmarks")?,
            "--scale" => cli.spec.scale = value()?.to_string(),
            "--d" => cli.spec.distances = parse_list(value()?, "--d")?,
            "--nmin" => cli.spec.min_neighbors = parse_list(value()?, "--nmin")?,
            "--lambda" => cli.spec.lambda_min = parse_list(value()?, "--lambda")?,
            "--metric" => cli.spec.metric = value()?.to_string(),
            "--variogram" => cli.spec.variogram = parse_variogram(value()?)?,
            "--optimizer" => cli.spec.optimizer = parse_optimizer(value()?)?,
            "--seed" => cli.spec.seed = value()?.parse().map_err(|_| "bad --seed")?,
            "--repeats" => cli.spec.repeats = value()?.parse().map_err(|_| "bad --repeats")?,
            "--max-neighbors" => {
                cli.spec.max_neighbors = value()?.parse().map_err(|_| "bad --max-neighbors")?
            }
            "--approx" => {
                let screen_to = value()?.parse().map_err(|_| "bad --approx")?;
                let mut approx = cli.spec.approx.unwrap_or_default();
                approx.screen_to = screen_to;
                cli.spec.approx = Some(approx);
            }
            "--approx-epsilon" => {
                let epsilon = value()?.parse().map_err(|_| "bad --approx-epsilon")?;
                let mut approx = cli.spec.approx.unwrap_or_default();
                approx.epsilon = epsilon;
                cli.spec.approx = Some(approx);
            }
            "--gate" => {
                cli.spec.gate = Some(match value()? {
                    "fixed" => GatePolicy::Fixed,
                    "variance" => GatePolicy::Variance {
                        // Keep a threshold set earlier (--variance-threshold
                        // before --gate variance); default to 1.0 otherwise.
                        threshold: match cli.spec.gate {
                            Some(GatePolicy::Variance { threshold }) => threshold,
                            _ => 1.0,
                        },
                    },
                    spec => match spec.strip_prefix("variance:") {
                        Some(t) => GatePolicy::Variance {
                            threshold: t.parse().map_err(|_| "bad --gate variance threshold")?,
                        },
                        None => return Err(format!("unknown gate {spec:?}")),
                    },
                });
            }
            "--variance-threshold" => {
                let threshold = value()?.parse().map_err(|_| "bad --variance-threshold")?;
                cli.spec.gate = Some(GatePolicy::Variance { threshold });
            }
            "--loo-select" => cli.spec.loo_select = Some(true),
            "--nugget" => {
                cli.spec.nugget = Some(match value()? {
                    "auto" => NuggetPolicy::Estimate,
                    v => NuggetPolicy::Fixed {
                        value: v.parse().map_err(|_| "bad --nugget")?,
                    },
                });
            }
            "--name" => cli.spec.name = value()?.to_string(),
            "--no-audit" => cli.spec.audit = false,
            "--workers" => cli.workers = value()?.parse().map_err(|_| "bad --workers")?,
            "--threads" => cli.spec.threads = Some(value()?.parse().map_err(|_| "bad --threads")?),
            "--out" => cli.out = Some(value()?.to_string()),
            "--on-error" => cli.spec.on_error = Some(FaultPolicy::parse(value()?)?),
            "--resume" => cli.resume = true,
            "--compress" => cli.compress = true,
            "--smoke" => cli.smoke = true,
            "--timing" => cli.timing = true,
            "--metrics-out" => cli.metrics_out = Some(value()?.to_string()),
            "--trace-out" => cli.trace_out = Some(value()?.to_string()),
            "--quiet" => cli.quiet = true,
            "--index" => cli.shard_index = Some(value()?.parse().map_err(|_| "bad --index")?),
            "--of" => cli.shard_of = Some(value()?.parse().map_err(|_| "bad --of")?),
            other if !other.starts_with('-') => cli.inputs.push(other.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // The `.z` extension is the read-side detection key for compressed
    // artifacts, so it must track the write-side flag both ways.
    if cli.compress {
        match cli.out.as_deref() {
            Some(path) if path.ends_with(".z") => {}
            Some(path) => {
                return Err(format!(
                    "--compress requires --out ending in .z (got {path:?})"
                ))
            }
            None => return Err("--compress requires --out".to_string()),
        }
    } else if cli.out.as_deref().is_some_and(|p| p.ends_with(".z")) {
        return Err(
            "write .z artifacts with --compress (the extension marks compressed files)".to_string(),
        );
    }
    Ok(cli)
}

fn emit(cli: &Cli, text: &str) -> Result<(), String> {
    match &cli.out {
        Some(path) if cli.compress => {
            // One-shot compression of the finalized artifact (a proper
            // finished stream — `campaign decode` recovers the text
            // bit-exactly with the strict decoder).
            fs::write(path, krigeval_flate::compress(text.as_bytes()))
                .map_err(|e| format!("cannot write {path}: {e}"))
        }
        Some(path) => fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            std::io::stdout().flush().map_err(|e| e.to_string())
        }
    }
}

/// Removes a torn trailing partial line (no final newline — the writer
/// was killed mid-write) from an uncompressed journal before `--resume`
/// appends to it; appending after a tear would otherwise weld the new
/// row onto the partial line, turning a tolerated torn *tail* into a
/// corrupt line **mid-file** that the next resume rejects.
fn trim_torn_tail(path: &str, text: &str) -> Result<(), String> {
    let keep = match text.rfind('\n') {
        Some(last_newline) if last_newline + 1 < text.len() => last_newline + 1,
        None if !text.is_empty() => 0,
        _ => return Ok(()), // ends on a line boundary (or empty)
    };
    let file = fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("cannot open journal {path}: {e}"))?;
    file.set_len(keep as u64)
        .map_err(|e| format!("cannot trim torn journal tail in {path}: {e}"))
}

/// Opens the resume journal for writing. Uncompressed journals are
/// appended to (after trimming any torn tail); compressed journals are
/// rewritten from the replayed rows — a raw DEFLATE stream with a
/// possibly-torn tail cannot be appended to in place.
fn reopen_journal(
    cli: &Cli,
    path: &str,
    text: &str,
    manifest: Option<&ShardManifest>,
    records: &[krigeval_engine::RunRecord],
    failures: &[krigeval_engine::FailureRecord],
    options: SinkOptions,
) -> Result<JournalWriter, String> {
    if !cli.compress {
        trim_torn_tail(path, text)?;
        return JournalWriter::append(path).map_err(|e| format!("cannot append {path}: {e}"));
    }
    let journal = JournalWriter::create_compressed(path)
        .map_err(|e| format!("cannot recreate compressed journal {path}: {e}"))?;
    let write = |r: Result<(), std::io::Error>| {
        r.map_err(|e| format!("cannot rewrite compressed journal {path}: {e}"))
    };
    if let Some(manifest) = manifest {
        write(journal.line(&manifest.render()))?;
    }
    for record in records {
        write(journal.record(record, options))?;
    }
    for failure in failures {
        write(journal.failure(failure, options))?;
    }
    Ok(journal)
}

/// Observability setup shared by `run`, `shard` and `merge`: one
/// registry and one tracer for the whole invocation, built only when
/// requested — the default path carries no obs bookkeeping at all.
fn build_obs(cli: &Cli) -> Result<(Registry, Option<CampaignObs>), String> {
    let registry = Registry::new();
    let tracer = match &cli.trace_out {
        Some(path) => {
            let sink = JsonlSink::create(Path::new(path), cli.timing)
                .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
            Tracer::new(vec![Arc::new(sink)])
        }
        None => Tracer::disabled(),
    };
    let obs = (cli.metrics_out.is_some() || cli.trace_out.is_some())
        .then(|| CampaignObs::new(&registry, tracer).with_timing(cli.timing));
    Ok((registry, obs))
}

/// Writes the final metrics snapshot to `--metrics-out` (Prometheus text
/// when the path ends in `.prom`, JSON otherwise).
fn write_metrics(cli: &Cli, registry: &Registry) -> Result<(), String> {
    let Some(path) = &cli.metrics_out else {
        return Ok(());
    };
    let snapshot = registry.snapshot();
    let mut text = if path.ends_with(".prom") {
        snapshot.to_prometheus()
    } else {
        snapshot.to_json(cli.timing)
    };
    if !text.ends_with('\n') {
        text.push('\n');
    }
    fs::write(path, text).map_err(|e| format!("cannot write metrics to {path}: {e}"))
}

fn cmd_run(cli: &Cli) -> Result<ExitCode, String> {
    let progress = if cli.quiet {
        Progress::Silent
    } else {
        Progress::Stderr
    };
    let options = SinkOptions {
        include_timing: cli.timing,
    };
    let (registry, obs) = build_obs(cli)?;

    // Resume: replay the journalled rows, execute only the remainder.
    // `read_artifact_text` transparently decodes a compressed (`.z`)
    // journal, including a torn sync-flushed tail.
    let (resume_text, (mut records, mut failures)) = if cli.resume {
        let path = cli
            .out
            .as_deref()
            .ok_or_else(|| "--resume needs --out (the journal to continue)".to_string())?;
        let text = read_artifact_text(Path::new(path))
            .map_err(|e| format!("cannot read journal {path}: {e}"))?;
        let rows = load_journal(&text).map_err(|e| format!("{path}: {e}"))?;
        (text, rows)
    } else {
        (String::new(), (Vec::new(), Vec::new()))
    };
    let done: std::collections::HashSet<u64> = records
        .iter()
        .map(|r| r.index)
        .chain(failures.iter().map(|f| f.index))
        .collect();

    let all_runs = cli.spec.expand().map_err(|e| e.to_string())?;
    let total = all_runs.len();
    let runs: Vec<_> = all_runs
        .into_iter()
        .filter(|r| !done.contains(&r.index))
        .collect();
    if cli.resume {
        if let Some(obs) = &obs {
            obs.record_resume(done.len() as u64);
        }
        if !cli.quiet {
            eprintln!(
                "resuming {:?}: {} of {total} rows journalled, {} to run",
                cli.spec.name,
                done.len(),
                runs.len()
            );
        }
    }

    // With --out, stream every completed row to the file so a killed
    // campaign can resume; the file is rewritten finalized below.
    let journal = match (&cli.out, cli.resume) {
        (Some(path), false) if cli.compress => Some(
            JournalWriter::create_compressed(path)
                .map_err(|e| format!("cannot create {path}: {e}"))?,
        ),
        (Some(path), false) => {
            Some(JournalWriter::create(path).map_err(|e| format!("cannot create {path}: {e}"))?)
        }
        (Some(path), true) => Some(reopen_journal(
            cli,
            path,
            &resume_text,
            None,
            &records,
            &failures,
            options,
        )?),
        (None, _) => None,
    };
    let outcome = run_specs_opts(
        runs,
        ExecOptions {
            workers: cli.workers,
            progress,
            policy: cli.spec.on_error.unwrap_or_default(),
            journal: journal.as_ref(),
            journal_options: options,
            progress_out: None,
            obs: obs.as_ref(),
        },
    )
    .map_err(|e| e.to_string())?;
    drop(journal);

    records.extend(outcome.records.iter().cloned());
    records.sort_by_key(|r| r.index);
    failures.extend(outcome.failures.iter().cloned());
    failures.sort_by_key(|f| f.index);
    let summary = SummaryRecord::from_records(
        &cli.spec.name,
        &records,
        &failures,
        outcome.cache,
        outcome.workers,
        cli.timing.then_some(outcome.wall_ms),
    );
    emit(
        cli,
        &to_jsonl_string_full(
            &records,
            &failures,
            &outcome.journal_errors,
            &summary,
            options,
        ),
    )?;
    write_metrics(cli, &registry)?;
    if !cli.quiet {
        eprintln!(
            "campaign {:?}: {} runs ({} failed) on {} workers in {:.0} ms; \
             sims {} / kriges {}; shared cache {} hits / {} lookups",
            cli.spec.name,
            records.len(),
            failures.len(),
            outcome.workers,
            outcome.wall_ms,
            summary.total_simulated,
            summary.total_kriged,
            outcome.cache.hits,
            outcome.cache.lookups,
        );
        if obs.is_some() {
            let snapshot = registry.snapshot();
            let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
            eprintln!(
                "obs: runs {} ok / {} failed | journal {} writes / {} errors | \
                 hybrid {} queries ({} sim, {} krig, {} cached) | retries {}",
                counter("engine_runs_completed_total"),
                counter("engine_runs_failed_total"),
                counter("engine_journal_writes_total"),
                counter("engine_journal_errors_total"),
                counter("hybrid_queries_total"),
                counter("hybrid_simulated_total"),
                counter("hybrid_kriged_total"),
                counter("hybrid_cache_hits_total"),
                counter("engine_run_retries_total"),
            );
            // Gate decisions and the kriging-variance level, aggregated
            // over the campaign: σ̄² is the kriged-query-weighted mean of
            // the per-run means.
            let kriged_weight: u64 = records.iter().map(|r| r.kriged).sum();
            let mean_variance = if kriged_weight == 0 {
                0.0
            } else {
                records
                    .iter()
                    .map(|r| r.mean_variance * r.kriged as f64)
                    .sum::<f64>()
                    / kriged_weight as f64
            };
            eprintln!(
                "obs: gate rejections {} | mean kriging variance {:.6}",
                counter("hybrid_gate_rejections_total"),
                mean_variance,
            );
        }
    }
    // Lost rows — failed runs kept by the skip policy, or journal writes
    // that never landed — make the artifact incomplete. The campaign still
    // emits everything it has, but the exit code must say so; this line is
    // printed even under --quiet because a silent success here is the bug.
    if !failures.is_empty() || !outcome.journal_errors.is_empty() {
        eprintln!(
            "campaign {:?}: incomplete — {} run(s) failed, {} journal write(s) lost",
            cli.spec.name,
            failures.len(),
            outcome.journal_errors.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_shard(cli: &Cli) -> Result<ExitCode, String> {
    let index = cli
        .shard_index
        .ok_or_else(|| "shard needs --index (this process's shard, 0-based)".to_string())?;
    let of = cli
        .shard_of
        .ok_or_else(|| "shard needs --of (the total number of shards)".to_string())?;
    if of == 0 {
        return Err("--of must be at least 1".to_string());
    }
    if index >= of {
        return Err(format!("--index {index} is out of range for --of {of}"));
    }
    let out = cli
        .out
        .as_deref()
        .ok_or_else(|| "shard needs --out (the shard artifact to write)".to_string())?;
    let progress = if cli.quiet {
        Progress::Silent
    } else {
        Progress::Stderr
    };
    let options = SinkOptions {
        include_timing: cli.timing,
    };
    let (registry, obs) = build_obs(cli)?;

    let all_runs = cli.spec.expand().map_err(|e| e.to_string())?;
    let total = all_runs.len() as u64;
    let manifest = ShardManifest::new(&cli.spec, index, of, total);

    // Per-shard resume: revalidate the manifest header (continuing a
    // shard of a different campaign — or a different slot — would merge
    // into a corrupt artifact), then replay the journalled rows.
    let (resume_text, (mut records, mut failures)) = if cli.resume {
        let text = read_artifact_text(Path::new(out))
            .map_err(|e| format!("cannot read shard journal {out}: {e}"))?;
        let found = parse_manifest(out, &text).map_err(|e| e.to_string())?;
        if found != manifest {
            return Err(format!(
                "{out}: existing shard manifest does not match this invocation \
                 (found shard {} of {} for campaign {:?} digest {}, expected \
                 shard {index} of {of} for campaign {:?} digest {})",
                found.index,
                found.of,
                found.name,
                found.spec_digest,
                manifest.name,
                manifest.spec_digest,
            ));
        }
        let rows = load_journal(&text).map_err(|e| format!("{out}: {e}"))?;
        (text, rows)
    } else {
        (String::new(), (Vec::new(), Vec::new()))
    };
    let done: std::collections::HashSet<u64> = records
        .iter()
        .map(|r| r.index)
        .chain(failures.iter().map(|f| f.index))
        .collect();
    let runs: Vec<_> = shard_runs(all_runs, index, of)
        .into_iter()
        .filter(|r| !done.contains(&r.index))
        .collect();
    if let Some(obs) = &obs {
        if cli.resume {
            obs.record_resume(done.len() as u64);
        }
        obs.record_shard(index, of, runs.len() as u64);
    }
    if !cli.quiet {
        eprintln!(
            "shard {index} of {of} for {:?}: {} of {total} rows owned, {} to run",
            cli.spec.name,
            done.len() + runs.len(),
            runs.len()
        );
    }

    // A fresh shard journal starts with its manifest header, before any
    // row can land; a resumed journal already carries it (a resumed
    // *compressed* journal is rewritten, manifest first).
    let journal = if cli.resume {
        reopen_journal(
            cli,
            out,
            &resume_text,
            Some(&manifest),
            &records,
            &failures,
            options,
        )?
    } else {
        let journal = if cli.compress {
            JournalWriter::create_compressed(out)
                .map_err(|e| format!("cannot create {out}: {e}"))?
        } else {
            JournalWriter::create(out).map_err(|e| format!("cannot create {out}: {e}"))?
        };
        journal
            .line(&manifest.render())
            .map_err(|e| format!("cannot write shard manifest to {out}: {e}"))?;
        journal
    };
    let outcome = run_specs_opts(
        runs,
        ExecOptions {
            workers: cli.workers,
            progress,
            policy: cli.spec.on_error.unwrap_or_default(),
            journal: Some(&journal),
            journal_options: options,
            progress_out: None,
            obs: obs.as_ref(),
        },
    )
    .map_err(|e| e.to_string())?;
    drop(journal);

    records.extend(outcome.records.iter().cloned());
    records.sort_by_key(|r| r.index);
    failures.extend(outcome.failures.iter().cloned());
    failures.sort_by_key(|f| f.index);
    emit(cli, &render_shard(&manifest, &records, &failures, options))?;
    write_metrics(cli, &registry)?;
    if !cli.quiet {
        eprintln!(
            "shard {index} of {of} for {:?}: {} runs ({} failed) on {} workers in {:.0} ms",
            cli.spec.name,
            records.len(),
            failures.len(),
            outcome.workers,
            outcome.wall_ms,
        );
    }
    // Same incomplete contract as `run`: the artifact is emitted either
    // way, but lost rows must not exit 0 (printed even under --quiet).
    if !failures.is_empty() || !outcome.journal_errors.is_empty() {
        eprintln!(
            "campaign {:?} shard {index} of {of}: incomplete — {} run(s) failed, \
             {} journal write(s) lost",
            cli.spec.name,
            failures.len(),
            outcome.journal_errors.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_merge(cli: &Cli) -> Result<ExitCode, String> {
    if cli.inputs.is_empty() {
        return Err("merge needs the shard files as positional arguments".to_string());
    }
    let (registry, obs) = build_obs(cli)?;
    let mut shards = Vec::new();
    for path in &cli.inputs {
        // Compressed (`.z`) and plain shard files can be mixed freely;
        // the merge validates and reassembles the *uncompressed* rows
        // either way, so the merged artifact is byte-identical to the
        // single-process uncompressed output.
        let text =
            read_artifact_text(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
        shards.push(parse_shard(path.as_str(), &text).map_err(|e| e.to_string())?);
    }
    let (records, failures) = merge_shards(&shards).map_err(|e| e.to_string())?;
    let name = shards[0].manifest.name.clone();
    if let Some(obs) = &obs {
        obs.record_merge(shards.len() as u64, (records.len() + failures.len()) as u64);
    }
    // The merged artifact is always the deterministic (timing-off) form:
    // scheduling ran in other processes, so there is nothing truthful to
    // put in the timing fields — and byte-identity with the
    // single-process deterministic output is the whole point.
    let summary =
        SummaryRecord::from_records(&name, &records, &failures, CacheStats::default(), 1, None);
    emit(
        cli,
        &to_jsonl_string_full(&records, &failures, &[], &summary, SinkOptions::default()),
    )?;
    write_metrics(cli, &registry)?;
    if !cli.quiet {
        eprintln!(
            "merged {} shards of {:?}: {} runs ({} failed)",
            shards.len(),
            name,
            records.len(),
            failures.len(),
        );
    }
    // Failed rows carried by the shards make the merged artifact
    // incomplete, exactly as they would a single-process run (printed
    // even under --quiet).
    if !failures.is_empty() {
        eprintln!(
            "campaign {name:?}: incomplete — {} run(s) failed, 0 journal write(s) lost",
            failures.len(),
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_matrix(cli: &Cli) -> Result<ExitCode, String> {
    let spec = if cli.smoke {
        MatrixSpec::smoke()
    } else {
        // The grid flags (--scale, --d, --nmin, --gate, --threads,
        // --seed, --repeats, --no-audit) parameterize the matrix; the
        // benchmark list is fixed — all eight, that is the point.
        MatrixSpec {
            name: cli.spec.name.clone(),
            scale: cli.spec.scale.clone(),
            distances: cli.spec.distances.clone(),
            min_neighbors: cli.spec.min_neighbors.clone(),
            gate: cli.spec.gate,
            threads: cli.spec.threads.unwrap_or(1),
            seed: cli.spec.seed,
            repeats: cli.spec.repeats,
            audit: cli.spec.audit,
        }
    };
    let progress = if cli.quiet {
        Progress::Silent
    } else {
        Progress::Stderr
    };
    let (registry, obs) = build_obs(cli)?;
    let runs = spec.expand().map_err(|e| e.to_string())?;
    let total = runs.len();
    let outcome = run_specs_opts(
        runs,
        ExecOptions {
            workers: cli.workers,
            progress,
            policy: cli.spec.on_error.unwrap_or_default(),
            journal: None,
            journal_options: SinkOptions {
                include_timing: cli.timing,
            },
            progress_out: None,
            obs: obs.as_ref(),
        },
    )
    .map_err(|e| e.to_string())?;
    let rows = summarize(&outcome.records);
    emit(cli, &render_matrix_table(&rows))?;
    write_metrics(cli, &registry)?;
    if !cli.quiet {
        eprintln!(
            "matrix {:?}: {} of {total} runs ({} failed) across {} benchmarks on {} workers \
             (threads {}) in {:.0} ms",
            spec.name,
            outcome.records.len(),
            outcome.failures.len(),
            rows.len(),
            outcome.workers,
            spec.threads,
            outcome.wall_ms,
        );
    }
    // The Table-I shape expectations are part of the contract: a matrix
    // that silently dropped a benchmark or routed SqueezeNet through the
    // wrong metric must not exit 0 (printed even under --quiet).
    let violations = check_table_shape(&rows);
    if !violations.is_empty() || !outcome.failures.is_empty() {
        for violation in &violations {
            eprintln!("matrix shape violation: {violation}");
        }
        eprintln!(
            "matrix {:?}: incomplete — {} run(s) failed, {} shape violation(s)",
            spec.name,
            outcome.failures.len(),
            violations.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_decode(cli: &Cli) -> Result<ExitCode, String> {
    let [input] = cli.inputs.as_slice() else {
        return Err("decode needs exactly one compressed artifact as a positional argument".into());
    };
    let raw = fs::read(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let prefix =
        krigeval_flate::inflate_tail_tolerant(&raw).map_err(|e| format!("{input}: {e}"))?;
    if !prefix.complete && !cli.quiet {
        eprintln!(
            "{input}: stream is not finished (a live or torn journal); \
             decoded the {}-byte prefix of complete blocks",
            prefix.data.len()
        );
    }
    match &cli.out {
        Some(path) => {
            fs::write(path, &prefix.data).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => {
            let mut stdout = std::io::stdout();
            stdout
                .write_all(&prefix.data)
                .and_then(|()| stdout.flush())
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn render_table(records: &[RunRecord]) -> String {
    let mut text = String::new();
    text.push_str(
        "benchmark    metric        Nv    d    N_λ    sim   krig   p(%)    j̄     \
         mean-ε     max-ε\n",
    );
    text.push_str(&"-".repeat(96));
    text.push('\n');
    for r in records {
        text.push_str(&format!(
            "{:<12} {:<12} {:>4} {:>4} {:>6} {:>6} {:>6} {:>6.1} {:>5.1} {:>9.3} {:>9.3}\n",
            r.benchmark,
            r.metric,
            r.nv,
            r.d,
            r.queries,
            r.simulated,
            r.kriged,
            r.p_percent,
            r.mean_neighbors,
            r.audit_mean_eps,
            r.audit_max_eps,
        ));
    }
    text
}

fn cmd_table(cli: &Cli) -> Result<(), String> {
    let progress = if cli.quiet {
        Progress::Silent
    } else {
        Progress::Stderr
    };
    let outcome = run_campaign(&cli.spec, cli.workers, progress).map_err(|e| e.to_string())?;
    emit(cli, &render_table(&outcome.records))
}

fn cmd_compare(cli: &Cli) -> Result<(), String> {
    let parallel_workers = cli.workers.max(2);
    eprintln!("sequential baseline (1 worker)...");
    let seq = run_campaign(&cli.spec, 1, Progress::Silent).map_err(|e| e.to_string())?;
    eprintln!("parallel run ({parallel_workers} workers)...");
    let par =
        run_campaign(&cli.spec, parallel_workers, Progress::Silent).map_err(|e| e.to_string())?;
    let strip = |records: &[RunRecord]| -> Vec<RunRecord> {
        records
            .iter()
            .cloned()
            .map(|mut r| {
                r.wall_ms = None;
                r
            })
            .collect()
    };
    let identical = strip(&seq.records) == strip(&par.records);
    let speedup = seq.wall_ms / par.wall_ms.max(1e-9);
    let text = format!(
        "runs: {}\nsequential: {:.0} ms\nparallel ({} workers): {:.0} ms\n\
         speedup: {:.2}x\ncache hits (parallel): {} / {} lookups\n\
         records identical across worker counts: {}\n",
        seq.records.len(),
        seq.wall_ms,
        parallel_workers,
        par.wall_ms,
        speedup,
        par.cache.hits,
        par.cache.lookups,
        identical,
    );
    emit(cli, &text)?;
    if !identical {
        return Err("parallel records diverged from the sequential baseline".to_string());
    }
    Ok(())
}

const HELP: &str =
    "usage: campaign <template|run|matrix|shard|merge|decode|table|compare|help> [options]\n\
see the module docs (crates/engine/src/bin/campaign.rs) for the option list\n";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return fail("missing subcommand"),
    };
    if matches!(command, "help" | "--help" | "-h") {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    let cli = match parse_cli(rest) {
        Ok(cli) => cli,
        Err(e) => return fail(&e),
    };
    let result = match command {
        "template" => emit(&cli, &format!("{}\n", cli.spec.to_json())).map(|()| ExitCode::SUCCESS),
        "run" => cmd_run(&cli),
        "matrix" => cmd_matrix(&cli),
        "shard" => cmd_shard(&cli),
        "merge" => cmd_merge(&cli),
        "decode" => cmd_decode(&cli),
        "table" => cmd_table(&cli).map(|()| ExitCode::SUCCESS),
        "compare" => cmd_compare(&cli).map(|()| ExitCode::SUCCESS),
        other => return fail(&format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => fail(&e),
    }
}
