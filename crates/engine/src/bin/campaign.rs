//! `campaign` — declarative experiment campaigns over the kriging engine.
//!
//! ```text
//! campaign template                 # print a spec template (JSON) to stdout
//! campaign run [OPTIONS]           # execute a campaign, emit JSONL
//! campaign table [OPTIONS]         # execute and render a Table-I-style table
//! campaign compare [OPTIONS]       # sequential vs parallel wall-clock
//! ```
//!
//! Common options:
//!
//! ```text
//! --spec FILE        load a CampaignSpec from a JSON file
//! --benchmarks LIST  comma-separated (fir,iir,fft,hevc,dct,lms,cnn,squeezenet)
//! --scale S          fast | paper            (default fast)
//! --d LIST           neighbour radii          (default 2,3,4,5)
//! --nmin LIST        minimum neighbour counts (default 3)
//! --lambda LIST      λ_min sweep (empty = canonical per benchmark)
//! --metric M         l1 | l2 | linf           (default l1)
//! --variogram V      pilot | fixed-linear:SLOPE | fit-after:N | refit:N:EVERY
//!                    | spherical:N:S:R | exponential:N:S:R | gaussian:N:S:R
//! --optimizer O      auto | minplusone | tiebreak:TOL | descent
//! --seed N           base seed                (default 0)
//! --repeats N        repeats per cell with derived seeds (default 1)
//! --workers N        worker threads, one run per worker (default 4)
//! --threads N        in-run evaluation threads: each run's planned
//!                    simulation batches fan out over N workers via the
//!                    engine backend (default 1 = inline backend; results
//!                    are identical for any value; incompatible with
//!                    active fault injection)
//! --out FILE         write JSONL to FILE instead of stdout
//! --on-error P       fail-fast | skip | retry:N  (default fail-fast;
//!                    overrides the spec's on_error field)
//! --resume           continue an interrupted campaign from the journal
//!                    in --out: rows already journalled are replayed,
//!                    only the missing runs execute (requires --out)
//! --timing           include wall-clock fields in the JSONL (off keeps
//!                    output byte-identical across worker counts and
//!                    resumes)
//! --metrics-out FILE write a campaign metrics snapshot on completion:
//!                    Prometheus text format when FILE ends in .prom,
//!                    JSON otherwise (counters only unless --timing)
//! --trace-out FILE   stream structured trace events (query decisions,
//!                    run completions, journal errors, ...) to FILE as
//!                    JSONL; wall-clock fields included only with
//!                    --timing
//! --quiet            suppress stderr progress lines
//! ```
//!
//! With `--out`, `run` streams every completed row to the file as a
//! flushed journal line and rewrites the file in finalized form (rows
//! in index order plus the summary) on success — killing the process
//! mid-campaign leaves a valid journal for `--resume`.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use krigeval_engine::executor::{run_campaign, run_specs_opts, ExecOptions, Progress};
use krigeval_engine::fault::FaultPolicy;
use krigeval_engine::obs::CampaignObs;
use krigeval_engine::sink::{load_journal, to_jsonl_string_full, JournalWriter, SinkOptions};
use krigeval_engine::spec::{CampaignSpec, OptimizerSpec, VariogramSpec};
use krigeval_engine::{RunRecord, SummaryRecord};
use krigeval_obs::{JsonlSink, Registry, Tracer};

fn fail(message: &str) -> ExitCode {
    eprintln!("campaign: {message}");
    eprintln!("run `campaign help` for usage");
    ExitCode::FAILURE
}

fn parse_list<T: std::str::FromStr>(value: &str, flag: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse::<T>()
                .map_err(|_| format!("bad value {part:?} for {flag}"))
        })
        .collect()
}

fn parse_variogram(value: &str) -> Result<VariogramSpec, String> {
    let mut parts = value.split(':');
    let head = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    let arg = |i: usize| -> Result<&str, String> {
        args.get(i)
            .copied()
            .ok_or_else(|| format!("--variogram {head} needs more arguments"))
    };
    match head {
        "pilot" => Ok(VariogramSpec::Pilot),
        "fixed-linear" => Ok(VariogramSpec::FixedLinear {
            slope: arg(0)?.parse().map_err(|_| "bad slope".to_string())?,
        }),
        "fit-after" => Ok(VariogramSpec::FitAfter {
            min_samples: arg(0)?
                .parse()
                .map_err(|_| "bad sample count".to_string())?,
        }),
        "refit" => Ok(VariogramSpec::Refit {
            min_samples: arg(0)?
                .parse()
                .map_err(|_| "bad sample count".to_string())?,
            every: arg(1)?
                .parse()
                .map_err(|_| "bad refit stride".to_string())?,
        }),
        family @ ("spherical" | "exponential" | "gaussian") => {
            let num = |i: usize| -> Result<f64, String> {
                arg(i)?
                    .parse()
                    .map_err(|_| format!("bad {family} parameter"))
            };
            let (nugget, sill, range) = (num(0)?, num(1)?, num(2)?);
            let model = match family {
                "spherical" => krigeval_core::VariogramModel::spherical(nugget, sill, range),
                "exponential" => krigeval_core::VariogramModel::exponential(nugget, sill, range),
                _ => krigeval_core::VariogramModel::gaussian(nugget, sill, range),
            }
            .map_err(|e| e.to_string())?;
            Ok(VariogramSpec::Fixed { model })
        }
        other => Err(format!("unknown variogram policy {other:?}")),
    }
}

fn parse_optimizer(value: &str) -> Result<OptimizerSpec, String> {
    let (head, arg) = match value.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (value, None),
    };
    match head {
        "auto" => Ok(OptimizerSpec::Auto),
        "minplusone" => Ok(OptimizerSpec::MinPlusOne),
        "tiebreak" => Ok(OptimizerSpec::TieBreak {
            tolerance: arg
                .unwrap_or("0.0")
                .parse()
                .map_err(|_| "bad tie tolerance".to_string())?,
        }),
        "descent" => Ok(OptimizerSpec::Descent),
        other => Err(format!("unknown optimizer {other:?}")),
    }
}

struct Cli {
    spec: CampaignSpec,
    workers: usize,
    out: Option<String>,
    timing: bool,
    quiet: bool,
    resume: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        spec: CampaignSpec::default(),
        workers: 4,
        out: None,
        timing: false,
        quiet: false,
        resume: false,
        metrics_out: None,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--spec" => {
                let path = value()?;
                let text =
                    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                cli.spec = CampaignSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            }
            "--benchmarks" => cli.spec.benchmarks = parse_list(value()?, "--benchmarks")?,
            "--scale" => cli.spec.scale = value()?.to_string(),
            "--d" => cli.spec.distances = parse_list(value()?, "--d")?,
            "--nmin" => cli.spec.min_neighbors = parse_list(value()?, "--nmin")?,
            "--lambda" => cli.spec.lambda_min = parse_list(value()?, "--lambda")?,
            "--metric" => cli.spec.metric = value()?.to_string(),
            "--variogram" => cli.spec.variogram = parse_variogram(value()?)?,
            "--optimizer" => cli.spec.optimizer = parse_optimizer(value()?)?,
            "--seed" => cli.spec.seed = value()?.parse().map_err(|_| "bad --seed")?,
            "--repeats" => cli.spec.repeats = value()?.parse().map_err(|_| "bad --repeats")?,
            "--max-neighbors" => {
                cli.spec.max_neighbors = value()?.parse().map_err(|_| "bad --max-neighbors")?
            }
            "--name" => cli.spec.name = value()?.to_string(),
            "--no-audit" => cli.spec.audit = false,
            "--workers" => cli.workers = value()?.parse().map_err(|_| "bad --workers")?,
            "--threads" => cli.spec.threads = Some(value()?.parse().map_err(|_| "bad --threads")?),
            "--out" => cli.out = Some(value()?.to_string()),
            "--on-error" => cli.spec.on_error = Some(FaultPolicy::parse(value()?)?),
            "--resume" => cli.resume = true,
            "--timing" => cli.timing = true,
            "--metrics-out" => cli.metrics_out = Some(value()?.to_string()),
            "--trace-out" => cli.trace_out = Some(value()?.to_string()),
            "--quiet" => cli.quiet = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cli)
}

fn emit(cli: &Cli, text: &str) -> Result<(), String> {
    match &cli.out {
        Some(path) => fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            std::io::stdout().flush().map_err(|e| e.to_string())
        }
    }
}

fn cmd_run(cli: &Cli) -> Result<ExitCode, String> {
    let progress = if cli.quiet {
        Progress::Silent
    } else {
        Progress::Stderr
    };
    let options = SinkOptions {
        include_timing: cli.timing,
    };

    // Observability: one registry and one tracer for the whole campaign,
    // built only when requested — the default path carries no obs
    // bookkeeping at all.
    let registry = Registry::new();
    let tracer = match &cli.trace_out {
        Some(path) => {
            let sink = JsonlSink::create(Path::new(path), cli.timing)
                .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
            Tracer::new(vec![Arc::new(sink)])
        }
        None => Tracer::disabled(),
    };
    let obs = (cli.metrics_out.is_some() || cli.trace_out.is_some())
        .then(|| CampaignObs::new(&registry, tracer).with_timing(cli.timing));

    // Resume: replay the journalled rows, execute only the remainder.
    let (mut records, mut failures) = if cli.resume {
        let path = cli
            .out
            .as_deref()
            .ok_or_else(|| "--resume needs --out (the journal to continue)".to_string())?;
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read journal {path}: {e}"))?;
        load_journal(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        (Vec::new(), Vec::new())
    };
    let done: std::collections::HashSet<u64> = records
        .iter()
        .map(|r| r.index)
        .chain(failures.iter().map(|f| f.index))
        .collect();

    let all_runs = cli.spec.expand().map_err(|e| e.to_string())?;
    let total = all_runs.len();
    let runs: Vec<_> = all_runs
        .into_iter()
        .filter(|r| !done.contains(&r.index))
        .collect();
    if cli.resume {
        if let Some(obs) = &obs {
            obs.record_resume(done.len() as u64);
        }
        if !cli.quiet {
            eprintln!(
                "resuming {:?}: {} of {total} rows journalled, {} to run",
                cli.spec.name,
                done.len(),
                runs.len()
            );
        }
    }

    // With --out, stream every completed row to the file so a killed
    // campaign can resume; the file is rewritten finalized below.
    let journal = match (&cli.out, cli.resume) {
        (Some(path), false) => {
            Some(JournalWriter::create(path).map_err(|e| format!("cannot create {path}: {e}"))?)
        }
        (Some(path), true) => {
            Some(JournalWriter::append(path).map_err(|e| format!("cannot append {path}: {e}"))?)
        }
        (None, _) => None,
    };
    let outcome = run_specs_opts(
        runs,
        ExecOptions {
            workers: cli.workers,
            progress,
            policy: cli.spec.on_error.unwrap_or_default(),
            journal: journal.as_ref(),
            journal_options: options,
            progress_out: None,
            obs: obs.as_ref(),
        },
    )
    .map_err(|e| e.to_string())?;
    drop(journal);

    records.extend(outcome.records.iter().cloned());
    records.sort_by_key(|r| r.index);
    failures.extend(outcome.failures.iter().cloned());
    failures.sort_by_key(|f| f.index);
    let summary = SummaryRecord::from_records(
        &cli.spec.name,
        &records,
        &failures,
        outcome.cache,
        outcome.workers,
        cli.timing.then_some(outcome.wall_ms),
    );
    emit(
        cli,
        &to_jsonl_string_full(
            &records,
            &failures,
            &outcome.journal_errors,
            &summary,
            options,
        ),
    )?;
    if let Some(path) = &cli.metrics_out {
        let snapshot = registry.snapshot();
        let mut text = if path.ends_with(".prom") {
            snapshot.to_prometheus()
        } else {
            snapshot.to_json(cli.timing)
        };
        if !text.ends_with('\n') {
            text.push('\n');
        }
        fs::write(path, text).map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
    }
    if !cli.quiet {
        eprintln!(
            "campaign {:?}: {} runs ({} failed) on {} workers in {:.0} ms; \
             sims {} / kriges {}; shared cache {} hits / {} lookups",
            cli.spec.name,
            records.len(),
            failures.len(),
            outcome.workers,
            outcome.wall_ms,
            summary.total_simulated,
            summary.total_kriged,
            outcome.cache.hits,
            outcome.cache.lookups,
        );
        if obs.is_some() {
            let snapshot = registry.snapshot();
            let counter = |name: &str| {
                snapshot
                    .counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0, |(_, v)| *v)
            };
            eprintln!(
                "obs: runs {} ok / {} failed | journal {} writes / {} errors | \
                 hybrid {} queries ({} sim, {} krig, {} cached) | retries {}",
                counter("engine_runs_completed_total"),
                counter("engine_runs_failed_total"),
                counter("engine_journal_writes_total"),
                counter("engine_journal_errors_total"),
                counter("hybrid_queries_total"),
                counter("hybrid_simulated_total"),
                counter("hybrid_kriged_total"),
                counter("hybrid_cache_hits_total"),
                counter("engine_run_retries_total"),
            );
        }
    }
    // Lost rows — failed runs kept by the skip policy, or journal writes
    // that never landed — make the artifact incomplete. The campaign still
    // emits everything it has, but the exit code must say so; this line is
    // printed even under --quiet because a silent success here is the bug.
    if !failures.is_empty() || !outcome.journal_errors.is_empty() {
        eprintln!(
            "campaign {:?}: incomplete — {} run(s) failed, {} journal write(s) lost",
            cli.spec.name,
            failures.len(),
            outcome.journal_errors.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn render_table(records: &[RunRecord]) -> String {
    let mut text = String::new();
    text.push_str(
        "benchmark    metric        Nv    d    N_λ    sim   krig   p(%)    j̄     \
         mean-ε     max-ε\n",
    );
    text.push_str(&"-".repeat(96));
    text.push('\n');
    for r in records {
        text.push_str(&format!(
            "{:<12} {:<12} {:>4} {:>4} {:>6} {:>6} {:>6} {:>6.1} {:>5.1} {:>9.3} {:>9.3}\n",
            r.benchmark,
            r.metric,
            r.nv,
            r.d,
            r.queries,
            r.simulated,
            r.kriged,
            r.p_percent,
            r.mean_neighbors,
            r.audit_mean_eps,
            r.audit_max_eps,
        ));
    }
    text
}

fn cmd_table(cli: &Cli) -> Result<(), String> {
    let progress = if cli.quiet {
        Progress::Silent
    } else {
        Progress::Stderr
    };
    let outcome = run_campaign(&cli.spec, cli.workers, progress).map_err(|e| e.to_string())?;
    emit(cli, &render_table(&outcome.records))
}

fn cmd_compare(cli: &Cli) -> Result<(), String> {
    let parallel_workers = cli.workers.max(2);
    eprintln!("sequential baseline (1 worker)...");
    let seq = run_campaign(&cli.spec, 1, Progress::Silent).map_err(|e| e.to_string())?;
    eprintln!("parallel run ({parallel_workers} workers)...");
    let par =
        run_campaign(&cli.spec, parallel_workers, Progress::Silent).map_err(|e| e.to_string())?;
    let strip = |records: &[RunRecord]| -> Vec<RunRecord> {
        records
            .iter()
            .cloned()
            .map(|mut r| {
                r.wall_ms = None;
                r
            })
            .collect()
    };
    let identical = strip(&seq.records) == strip(&par.records);
    let speedup = seq.wall_ms / par.wall_ms.max(1e-9);
    let text = format!(
        "runs: {}\nsequential: {:.0} ms\nparallel ({} workers): {:.0} ms\n\
         speedup: {:.2}x\ncache hits (parallel): {} / {} lookups\n\
         records identical across worker counts: {}\n",
        seq.records.len(),
        seq.wall_ms,
        parallel_workers,
        par.wall_ms,
        speedup,
        par.cache.hits,
        par.cache.lookups,
        identical,
    );
    emit(cli, &text)?;
    if !identical {
        return Err("parallel records diverged from the sequential baseline".to_string());
    }
    Ok(())
}

const HELP: &str = "usage: campaign <template|run|table|compare|help> [options]\n\
see the module docs (crates/engine/src/bin/campaign.rs) for the option list\n";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return fail("missing subcommand"),
    };
    if matches!(command, "help" | "--help" | "-h") {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    let cli = match parse_cli(rest) {
        Ok(cli) => cli,
        Err(e) => return fail(&e),
    };
    let result = match command {
        "template" => emit(&cli, &format!("{}\n", cli.spec.to_json())).map(|()| ExitCode::SUCCESS),
        "run" => cmd_run(&cli),
        "table" => cmd_table(&cli).map(|()| ExitCode::SUCCESS),
        "compare" => cmd_compare(&cli).map(|()| ExitCode::SUCCESS),
        other => return fail(&format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => fail(&e),
    }
}
