//! Multi-threaded campaign executor.
//!
//! A fixed pool of worker threads (scoped, no detached threads) pulls run
//! indices from a shared atomic counter — the simplest work queue that
//! balances the heavily skewed per-cell costs — and executes each cell
//! via [`crate::runner::run_single_attempt`] against one shared
//! [`SimCache`]. Results land in their pre-assigned slots, so the record
//! order (and, with timing off, the JSONL bytes) is independent of
//! worker count and scheduling.
//!
//! # Failure containment
//!
//! Every attempt runs inside `catch_unwind`: a panicking simulation
//! becomes a structured [`RunError::Panicked`] instead of tearing down
//! the worker (the cache's pending markers are cleaned by its own drop
//! guard, so waiters never wedge). What happens next is the campaign's
//! [`FaultPolicy`]: fail fast (the strict default), skip the run with a
//! tagged failure row, or retry transient failures with deterministic
//! attempt-counted backoff — never wall-clock, so retried campaigns
//! remain reproducible. Completed rows stream to an optional
//! [`JournalWriter`] (flush per line) for crash-resume.
//!
//! Journal writes are subject to the same policy: a failed write aborts
//! a fail-fast campaign with [`EngineError::Journal`], and under
//! skip/retry it is recorded in [`CampaignOutcome::journal_errors`] (and
//! serialized as a tagged `"journal_error"` row) so a silently
//! incomplete crash journal can never masquerade as a complete one.
//!
//! Progress lines and journal-failure notices go through one
//! line-atomic [`LineWriter`] (stderr by default, injectable via
//! [`ExecOptions::progress_out`]) so concurrent workers cannot tear
//! each other's lines. When an [`ExecOptions::obs`] bundle is attached
//! the executor also counts completions, failures, retries, panics and
//! journal activity, and emits `run_done` / `run_failed` /
//! `journal_error` trace events.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use krigeval_core::opt::OptError;
use krigeval_obs::LineWriter;

use crate::cache::{CacheStats, SimCache};
use crate::fault::FaultPolicy;
use crate::obs::CampaignObs;
use crate::runner::run_single_attempt_obs;
use crate::sink::{
    FailureRecord, JournalErrorRecord, JournalWriter, RunRecord, SinkOptions, SummaryRecord,
};
use crate::spec::{CampaignSpec, RunSpec, SpecError};

/// Progress reporting for a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Progress {
    /// No live output.
    #[default]
    Silent,
    /// One stderr line per completed run with live sims/kriges/cache
    /// statistics.
    Stderr,
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Completed records, sorted by run index.
    pub records: Vec<RunRecord>,
    /// Runs that failed permanently under a skip/retry policy, sorted by
    /// run index (always empty under fail-fast).
    pub failures: Vec<FailureRecord>,
    /// Journal writes that failed under a skip/retry policy, sorted by
    /// run index (always empty under fail-fast, which aborts instead).
    pub journal_errors: Vec<JournalErrorRecord>,
    /// Aggregate shared-cache counters.
    pub cache: CacheStats,
    /// Worker threads used.
    pub workers: usize,
    /// Campaign wall-clock in milliseconds.
    pub wall_ms: f64,
}

impl CampaignOutcome {
    /// Builds the campaign summary trailer, optionally carrying timing.
    pub fn summary(&self, name: &str, include_timing: bool) -> SummaryRecord {
        SummaryRecord::from_records(
            name,
            &self.records,
            &self.failures,
            self.cache,
            self.workers,
            include_timing.then_some(self.wall_ms),
        )
    }
}

/// Why one run failed: a structured optimizer error, or a panic caught
/// at the run boundary.
#[derive(Debug)]
pub enum RunError {
    /// The optimizer (or an evaluation underneath it) returned an error.
    Opt(OptError),
    /// The run panicked; the payload's message, when it carried one.
    Panicked {
        /// Panic payload rendered to text (`"opaque panic payload"` for
        /// non-string payloads).
        message: String,
    },
}

impl RunError {
    /// Whether a retry could plausibly succeed: panics and evaluation
    /// errors are transient (under fault injection they *are* — the next
    /// attempt draws a fresh stream — and organically they usually
    /// indicate an environmental hiccup); infeasible constraints and
    /// non-convergence are properties of the cell and retrying them
    /// wastes deterministic work on a deterministic failure.
    pub fn is_transient(&self) -> bool {
        match self {
            RunError::Panicked { .. } => true,
            RunError::Opt(OptError::Eval(_)) => true,
            RunError::Opt(_) => false,
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Opt(e) => write!(f, "{e}"),
            RunError::Panicked { message } => write!(f, "run panicked: {message}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Opt(e) => Some(e),
            RunError::Panicked { .. } => None,
        }
    }
}

impl From<OptError> for RunError {
    fn from(e: OptError) -> RunError {
        RunError::Opt(e)
    }
}

/// A campaign-level failure.
#[derive(Debug)]
pub enum EngineError {
    /// The spec did not expand to a valid run list.
    Spec(SpecError),
    /// A run failed; carries the expansion index of the failing cell.
    Run {
        /// Index of the failing run in the expansion.
        index: u64,
        /// The run error.
        source: RunError,
    },
    /// A journal write failed under the fail-fast policy. The run itself
    /// completed, but continuing would leave the crash journal silently
    /// incomplete — the exact failure mode this error exists to surface.
    Journal {
        /// Expansion index of the run whose journal line was lost.
        index: u64,
        /// The I/O error, rendered.
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // `SpecError`'s Display already carries the "invalid campaign
            // spec" prefix; repeating it here doubled the message.
            EngineError::Spec(e) => write!(f, "{e}"),
            EngineError::Run { index, source } => write!(f, "run {index} failed: {source}"),
            EngineError::Journal { index, message } => write!(
                f,
                "journal write failed for run {index}: {message} \
                 (aborting under fail-fast; use on_error skip/retry to \
                 tolerate journal loss)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SpecError> for EngineError {
    fn from(e: SpecError) -> EngineError {
        EngineError::Spec(e)
    }
}

/// One completed run's progress line. Rendered to a `String` so the
/// caller can hand the whole line to a [`LineWriter`] atomically —
/// per-field `eprintln!` from concurrent workers interleaved torn lines
/// at 4+ workers.
fn progress_text(done: usize, total: usize, record: &RunRecord, cache: CacheStats) -> String {
    format!(
        "[{done}/{total}] {} d={} nmin={} rep={}: N_λ={} sim={} krig={} p={:.1}% \
         cache {}h/{}l ({:.0} ms)",
        record.benchmark,
        record.d,
        record.min_neighbors,
        record.repeat,
        record.queries,
        record.simulated,
        record.kriged,
        record.p_percent,
        cache.hits,
        cache.lookups,
        record.wall_ms.unwrap_or(0.0),
    )
}

/// One permanently-failed run's progress line.
fn failure_text(done: usize, total: usize, failure: &FailureRecord) -> String {
    format!(
        "[{done}/{total}] {} d={} rep={}: FAILED after {} attempt(s): {}",
        failure.benchmark, failure.d, failure.repeat, failure.attempts, failure.error,
    )
}

/// Execution options for [`run_specs_opts`]: worker count, progress
/// reporting, the failure policy, and an optional crash journal that
/// receives every completed row (flushed per line, in completion
/// order).
#[derive(Debug, Default)]
pub struct ExecOptions<'a> {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Progress reporting.
    pub progress: Progress,
    /// What to do when a run fails.
    pub policy: FaultPolicy,
    /// Crash journal. Write failures follow `policy`: fail-fast aborts
    /// the campaign with [`EngineError::Journal`]; skip/retry records
    /// the loss in [`CampaignOutcome::journal_errors`].
    pub journal: Option<&'a JournalWriter>,
    /// Serialization options for journal lines (keep timing off for
    /// byte-identical resume).
    pub journal_options: SinkOptions,
    /// Line-atomic writer for progress lines and journal-failure
    /// notices; stderr when unset. Injectable so tests can capture the
    /// stream and callers can redirect it.
    pub progress_out: Option<&'a LineWriter>,
    /// Campaign observability bundle: when set, the executor counts
    /// completions / failures / retries / panics / journal activity into
    /// its registry and emits `run_done` / `run_failed` /
    /// `journal_error` events through its tracer.
    pub obs: Option<&'a CampaignObs>,
}

/// Runs every cell of `spec` on `workers` threads and collects the
/// records in expansion order, honouring the spec's own `on_error`
/// policy (fail fast when unset).
///
/// The outcome is deterministic in everything except wall-clock fields:
/// a fixed spec yields identical records for any worker count.
///
/// # Errors
///
/// Returns [`EngineError::Spec`] if the spec is invalid, or the
/// lowest-index [`EngineError::Run`] failure (remaining queued work is
/// abandoned once a failure is observed).
pub fn run_campaign(
    spec: &CampaignSpec,
    workers: usize,
    progress: Progress,
) -> Result<CampaignOutcome, EngineError> {
    let runs = spec.expand()?;
    run_specs_opts(
        runs,
        ExecOptions {
            workers,
            progress,
            policy: spec.on_error.unwrap_or_default(),
            ..ExecOptions::default()
        },
    )
}

/// Runs an explicit list of [`RunSpec`]s under the strict fail-fast
/// policy (the engine half of [`run_campaign`]; useful for callers that
/// post-process the expansion).
///
/// # Errors
///
/// Returns the lowest-index [`EngineError::Run`] failure, if any.
pub fn run_specs(
    runs: Vec<RunSpec>,
    workers: usize,
    progress: Progress,
) -> Result<CampaignOutcome, EngineError> {
    run_specs_opts(
        runs,
        ExecOptions {
            workers,
            progress,
            ..ExecOptions::default()
        },
    )
}

/// One run's terminal state inside the worker pool. The record is
/// boxed so the slot vector stays failure-variant-sized.
enum RunOutcome {
    Done(Box<RunRecord>),
    Skipped(FailureRecord),
    Fatal(RunError),
    /// The run completed but its journal write failed under fail-fast;
    /// carries the run's expansion index (which can differ from its slot
    /// position on resume-filtered runs).
    JournalFatal {
        index: u64,
        message: String,
    },
}

/// Applies the campaign failure policy to one journal write result.
///
/// A failed write is counted, traced as a `journal_error` event, and
/// reported through the line writer; it then either demands a fail-fast
/// abort (`Some(message)` is returned) or is queued as a tagged
/// [`JournalErrorRecord`] for the final output. This is the fix for the
/// executor's original sin of printing journal errors and dropping them.
fn journal_outcome(
    result: std::io::Result<()>,
    index: u64,
    fail_fast: bool,
    obs: Option<&CampaignObs>,
    out: &LineWriter,
    journal_errors: &Mutex<Vec<JournalErrorRecord>>,
) -> Option<String> {
    match result {
        Ok(()) => {
            if let Some(obs) = obs {
                obs.journal_writes.inc();
            }
            None
        }
        Err(e) => {
            let message = e.to_string();
            if let Some(obs) = obs {
                obs.journal_errors.inc();
                obs.tracer().emit(
                    "journal_error",
                    vec![("index", index.into()), ("error", message.as_str().into())],
                );
            }
            out.line(&format!("journal write failed for run {index}: {message}"));
            if fail_fast {
                Some(message)
            } else {
                journal_errors
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(JournalErrorRecord {
                        index,
                        error: message,
                    });
                None
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Deterministic backoff: attempt-counted cooperative yields, never
/// wall-clock. The point is to let a transient resource hiccup clear
/// without introducing a timing dependency — sleeping would make retry
/// schedules differ across machines while changing no result.
fn backoff(attempt: u32) {
    for _ in 0..(1u32 << attempt.min(6)) {
        std::thread::yield_now();
    }
}

/// Runs an explicit list of [`RunSpec`]s with full control over policy
/// and journaling. See the module docs for the failure-containment
/// contract.
///
/// # Errors
///
/// Under [`FaultPolicy::FailFast`], returns the lowest-index
/// [`EngineError::Run`] failure. Under skip/retry policies run failures
/// land in [`CampaignOutcome::failures`] instead and only spec-level
/// problems error.
pub fn run_specs_opts(
    runs: Vec<RunSpec>,
    options: ExecOptions<'_>,
) -> Result<CampaignOutcome, EngineError> {
    let started = Instant::now();
    let workers = options.workers.max(1);
    let total = runs.len();
    let cache = Arc::new(SimCache::new());
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<RunOutcome>>> = Mutex::new((0..total).map(|_| None).collect());
    let journal_errs: Mutex<Vec<JournalErrorRecord>> = Mutex::new(Vec::new());
    let max_retries = options.policy.max_retries();
    let fail_fast = options.policy == FaultPolicy::FailFast;
    let show_progress = progress_on(options.progress);
    // One line-atomic writer shared by all workers: progress lines and
    // journal-failure notices emit whole lines under its internal lock.
    let default_out;
    let out: &LineWriter = match options.progress_out {
        Some(out) => out,
        None => {
            default_out = LineWriter::stderr();
            &default_out
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..workers.min(total.max(1)) {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let run = &runs[i];
                let mut attempt: u32 = 0;
                let outcome = loop {
                    // The catch_unwind boundary turns a panicking
                    // simulation into a structured error; the cache's own
                    // drop guard has already cleared any pending marker
                    // by the time the unwind reaches us.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_single_attempt_obs(run, &cache, attempt, options.obs)
                    }));
                    let error = match caught {
                        Ok(Ok(record)) => break RunOutcome::Done(Box::new(record)),
                        Ok(Err(e)) => {
                            if let Some(obs) = options.obs {
                                obs.run_errors.inc();
                            }
                            RunError::Opt(e)
                        }
                        Err(payload) => {
                            if let Some(obs) = options.obs {
                                obs.run_panics.inc();
                            }
                            RunError::Panicked {
                                message: panic_message(payload),
                            }
                        }
                    };
                    if error.is_transient() && attempt < max_retries {
                        if let Some(obs) = options.obs {
                            obs.run_retries.inc();
                        }
                        attempt += 1;
                        backoff(attempt);
                        continue;
                    }
                    break if fail_fast {
                        RunOutcome::Fatal(error)
                    } else {
                        RunOutcome::Skipped(FailureRecord::from_run(run, &error, attempt + 1))
                    };
                };
                let outcome = match outcome {
                    RunOutcome::Done(record) => {
                        let fatal = options.journal.and_then(|journal| {
                            journal_outcome(
                                journal.record(&record, options.journal_options),
                                run.index,
                                fail_fast,
                                options.obs,
                                out,
                                &journal_errs,
                            )
                        });
                        if let Some(message) = fatal {
                            failed.store(true, Ordering::Relaxed);
                            RunOutcome::JournalFatal {
                                index: run.index,
                                message,
                            }
                        } else {
                            if let Some(obs) = options.obs {
                                obs.runs_completed.inc();
                                if obs.timing() {
                                    obs.run_wall_us
                                        .record(record.wall_ms.unwrap_or(0.0) * 1000.0);
                                }
                                obs.tracer().emit(
                                    "run_done",
                                    vec![
                                        ("index", record.index.into()),
                                        ("benchmark", record.benchmark.as_str().into()),
                                        ("d", record.d.into()),
                                        ("queries", record.queries.into()),
                                        ("simulated", record.simulated.into()),
                                        ("kriged", record.kriged.into()),
                                        ("wall_ms", record.wall_ms.unwrap_or(0.0).into()),
                                    ],
                                );
                            }
                            if show_progress {
                                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                                out.line(&progress_text(finished, total, &record, cache.stats()));
                            }
                            RunOutcome::Done(record)
                        }
                    }
                    RunOutcome::Skipped(failure) => {
                        // `fatal` is always None here: Skipped only
                        // exists under skip/retry, where journal losses
                        // queue instead of aborting.
                        let fatal = options.journal.and_then(|journal| {
                            journal_outcome(
                                journal.failure(&failure, options.journal_options),
                                run.index,
                                fail_fast,
                                options.obs,
                                out,
                                &journal_errs,
                            )
                        });
                        debug_assert!(fatal.is_none());
                        if let Some(obs) = options.obs {
                            obs.runs_failed.inc();
                            obs.tracer().emit(
                                "run_failed",
                                vec![
                                    ("index", failure.index.into()),
                                    ("benchmark", failure.benchmark.as_str().into()),
                                    ("d", failure.d.into()),
                                    ("attempts", failure.attempts.into()),
                                    ("error", failure.error.as_str().into()),
                                    ("fatal", false.into()),
                                ],
                            );
                        }
                        if show_progress {
                            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                            out.line(&failure_text(finished, total, &failure));
                        }
                        RunOutcome::Skipped(failure)
                    }
                    RunOutcome::Fatal(error) => {
                        failed.store(true, Ordering::Relaxed);
                        if let Some(obs) = options.obs {
                            obs.runs_failed.inc();
                            obs.tracer().emit(
                                "run_failed",
                                vec![
                                    ("index", run.index.into()),
                                    ("error", error.to_string().into()),
                                    ("fatal", true.into()),
                                ],
                            );
                        }
                        RunOutcome::Fatal(error)
                    }
                    RunOutcome::JournalFatal { .. } => {
                        unreachable!("the attempt loop never constructs JournalFatal")
                    }
                };
                // Poison recovery: writing an Option into a pre-sized Vec
                // slot cannot leave the Vec inconsistent, so a panicking
                // peer (only possible outside catch_unwind, i.e. a bug)
                // must not cascade into losing everyone else's results.
                slots.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(outcome);
            });
        }
    });

    let mut records = Vec::with_capacity(total);
    let mut failures = Vec::new();
    for (i, slot) in slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .enumerate()
    {
        match slot {
            Some(RunOutcome::Done(record)) => records.push(*record),
            Some(RunOutcome::Skipped(failure)) => failures.push(failure),
            Some(RunOutcome::Fatal(source)) => {
                return Err(EngineError::Run {
                    index: i as u64,
                    source,
                })
            }
            Some(RunOutcome::JournalFatal { index, message }) => {
                return Err(EngineError::Journal { index, message })
            }
            // Abandoned after a fatal failure elsewhere; the error slot
            // below (or above) is reported instead.
            None => continue,
        }
    }
    let mut journal_errors = journal_errs.into_inner().unwrap_or_else(|e| e.into_inner());
    journal_errors.sort_by_key(|e| e.index);
    Ok(CampaignOutcome {
        records,
        failures,
        journal_errors,
        cache: cache.stats(),
        workers,
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
    })
}

fn progress_on(progress: Progress) -> bool {
    progress == Progress::Stderr
}

/// Applies `f` to every item on a fixed worker pool, preserving input
/// order in the output. This is the engine's generic escape hatch for
/// bespoke experiment loops (e.g. the decision-divergence study) that do
/// not fit the campaign grid.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_workers(items, workers, |_, item| f(item))
}

/// Like [`parallel_map`], but tells `f` which worker (0-based, dense) is
/// calling, so callers can give each worker exclusive resources — e.g. one
/// simulator instance per worker in the engine-backed evaluation backend —
/// without locking a shared pool.
pub fn parallel_map_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let f = &f;
            let next = &next;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(w, &items[i]);
                slots.lock().expect("map slots poisoned")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("map slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            benchmarks: vec!["fir".to_string()],
            distances: vec![2.0, 3.0],
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn campaign_runs_all_cells_in_order() {
        let outcome = run_campaign(&small_spec(), 2, Progress::Silent).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.records[0].index, 0);
        assert_eq!(outcome.records[0].d, 2.0);
        assert_eq!(outcome.records[1].index, 1);
        assert_eq!(outcome.records[1].d, 3.0);
        assert!(outcome.cache.hits > 0, "cells share the pilot simulations");
    }

    #[test]
    fn records_do_not_depend_on_worker_count() {
        let one = run_campaign(&small_spec(), 1, Progress::Silent).unwrap();
        let four = run_campaign(&small_spec(), 4, Progress::Silent).unwrap();
        let strip = |mut r: RunRecord| {
            r.wall_ms = None;
            r
        };
        let a: Vec<RunRecord> = one.records.into_iter().map(strip).collect();
        let b: Vec<RunRecord> = four.records.into_iter().map(strip).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let spec = CampaignSpec {
            benchmarks: vec!["nope".to_string()],
            ..CampaignSpec::default()
        };
        assert!(matches!(
            run_campaign(&spec, 1, Progress::Silent),
            Err(EngineError::Spec(_))
        ));
    }

    #[test]
    fn summary_reflects_outcome() {
        let outcome = run_campaign(&small_spec(), 2, Progress::Silent).unwrap();
        let summary = outcome.summary("table1", false);
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.sim_cache_hits, outcome.cache.hits);
        assert!(summary.wall_ms.is_none());
        assert!(outcome.summary("table1", true).wall_ms.is_some());
    }

    #[test]
    fn parallel_map_workers_passes_dense_worker_ids() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_workers(&items, 4, |w, &x| {
            assert!(w < 4, "worker id {w} out of range");
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(&items, 4, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<u64>>());
        assert_eq!(
            parallel_map::<u64, u64, _>(&[], 4, |&x| x),
            Vec::<u64>::new()
        );
    }
}
