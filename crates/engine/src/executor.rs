//! Multi-threaded campaign executor.
//!
//! A fixed pool of worker threads (scoped, no detached threads) pulls run
//! indices from a shared atomic counter — the simplest work queue that
//! balances the heavily skewed per-cell costs — and executes each cell
//! via [`crate::runner::run_single`] against one shared [`SimCache`].
//! Results land in their pre-assigned slots, so the record order (and,
//! with timing off, the JSONL bytes) is independent of worker count and
//! scheduling.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use krigeval_core::opt::OptError;

use crate::cache::{CacheStats, SimCache};
use crate::runner::run_single;
use crate::sink::{RunRecord, SummaryRecord};
use crate::spec::{CampaignSpec, RunSpec, SpecError};

/// Progress reporting for a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Progress {
    /// No live output.
    #[default]
    Silent,
    /// One stderr line per completed run with live sims/kriges/cache
    /// statistics.
    Stderr,
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Completed records, sorted by run index.
    pub records: Vec<RunRecord>,
    /// Aggregate shared-cache counters.
    pub cache: CacheStats,
    /// Worker threads used.
    pub workers: usize,
    /// Campaign wall-clock in milliseconds.
    pub wall_ms: f64,
}

impl CampaignOutcome {
    /// Builds the campaign summary trailer, optionally carrying timing.
    pub fn summary(&self, name: &str, include_timing: bool) -> SummaryRecord {
        SummaryRecord::from_records(
            name,
            &self.records,
            self.cache,
            self.workers,
            include_timing.then_some(self.wall_ms),
        )
    }
}

/// A campaign-level failure.
#[derive(Debug)]
pub enum EngineError {
    /// The spec did not expand to a valid run list.
    Spec(SpecError),
    /// A run failed; carries the expansion index of the failing cell.
    Run {
        /// Index of the failing run in the expansion.
        index: u64,
        /// The optimizer error.
        source: OptError,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // `SpecError`'s Display already carries the "invalid campaign
            // spec" prefix; repeating it here doubled the message.
            EngineError::Spec(e) => write!(f, "{e}"),
            EngineError::Run { index, source } => write!(f, "run {index} failed: {source}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SpecError> for EngineError {
    fn from(e: SpecError) -> EngineError {
        EngineError::Spec(e)
    }
}

fn progress_line(done: usize, total: usize, record: &RunRecord, cache: CacheStats) {
    eprintln!(
        "[{done}/{total}] {} d={} nmin={} rep={}: N_λ={} sim={} krig={} p={:.1}% \
         cache {}h/{}l ({:.0} ms)",
        record.benchmark,
        record.d,
        record.min_neighbors,
        record.repeat,
        record.queries,
        record.simulated,
        record.kriged,
        record.p_percent,
        cache.hits,
        cache.lookups,
        record.wall_ms.unwrap_or(0.0),
    );
}

/// Runs every cell of `spec` on `workers` threads and collects the
/// records in expansion order.
///
/// The outcome is deterministic in everything except wall-clock fields:
/// a fixed spec yields identical records for any worker count.
///
/// # Errors
///
/// Returns [`EngineError::Spec`] if the spec is invalid, or the
/// lowest-index [`EngineError::Run`] failure (remaining queued work is
/// abandoned once a failure is observed).
pub fn run_campaign(
    spec: &CampaignSpec,
    workers: usize,
    progress: Progress,
) -> Result<CampaignOutcome, EngineError> {
    let runs = spec.expand()?;
    run_specs(runs, workers, progress)
}

/// Runs an explicit list of [`RunSpec`]s (the engine half of
/// [`run_campaign`]; useful for callers that post-process the expansion).
///
/// # Errors
///
/// Returns the lowest-index [`EngineError::Run`] failure, if any.
pub fn run_specs(
    runs: Vec<RunSpec>,
    workers: usize,
    progress: Progress,
) -> Result<CampaignOutcome, EngineError> {
    let started = Instant::now();
    let workers = workers.max(1);
    let total = runs.len();
    let cache = Arc::new(SimCache::new());
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<Result<RunRecord, OptError>>>> =
        Mutex::new((0..total).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(total.max(1)) {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let outcome = run_single(&runs[i], &cache);
                if outcome.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                if let (Progress::Stderr, Ok(record)) = (progress, &outcome) {
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    progress_line(finished, total, record, cache.stats());
                }
                slots.lock().expect("result slots poisoned")[i] = Some(outcome);
            });
        }
    });

    let mut records = Vec::with_capacity(total);
    for (i, slot) in slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .enumerate()
    {
        match slot {
            Some(Ok(record)) => records.push(record),
            Some(Err(source)) => {
                return Err(EngineError::Run {
                    index: i as u64,
                    source,
                })
            }
            // Abandoned after a failure elsewhere; the error slot below
            // (or above) is reported instead.
            None => continue,
        }
    }
    Ok(CampaignOutcome {
        records,
        cache: cache.stats(),
        workers,
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
    })
}

/// Applies `f` to every item on a fixed worker pool, preserving input
/// order in the output. This is the engine's generic escape hatch for
/// bespoke experiment loops (e.g. the decision-divergence study) that do
/// not fit the campaign grid.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                slots.lock().expect("map slots poisoned")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("map slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            benchmarks: vec!["fir".to_string()],
            distances: vec![2.0, 3.0],
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn campaign_runs_all_cells_in_order() {
        let outcome = run_campaign(&small_spec(), 2, Progress::Silent).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.records[0].index, 0);
        assert_eq!(outcome.records[0].d, 2.0);
        assert_eq!(outcome.records[1].index, 1);
        assert_eq!(outcome.records[1].d, 3.0);
        assert!(outcome.cache.hits > 0, "cells share the pilot simulations");
    }

    #[test]
    fn records_do_not_depend_on_worker_count() {
        let one = run_campaign(&small_spec(), 1, Progress::Silent).unwrap();
        let four = run_campaign(&small_spec(), 4, Progress::Silent).unwrap();
        let strip = |mut r: RunRecord| {
            r.wall_ms = None;
            r
        };
        let a: Vec<RunRecord> = one.records.into_iter().map(strip).collect();
        let b: Vec<RunRecord> = four.records.into_iter().map(strip).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let spec = CampaignSpec {
            benchmarks: vec!["nope".to_string()],
            ..CampaignSpec::default()
        };
        assert!(matches!(
            run_campaign(&spec, 1, Progress::Silent),
            Err(EngineError::Spec(_))
        ));
    }

    #[test]
    fn summary_reflects_outcome() {
        let outcome = run_campaign(&small_spec(), 2, Progress::Silent).unwrap();
        let summary = outcome.summary("table1", false);
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.sim_cache_hits, outcome.cache.hits);
        assert!(summary.wall_ms.is_none());
        assert!(outcome.summary("table1", true).wall_ms.is_some());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(&items, 4, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<u64>>());
        assert_eq!(
            parallel_map::<u64, u64, _>(&[], 4, |&x| x),
            Vec::<u64>::new()
        );
    }
}
