//! Engine-layer observability: metric sets and trace wiring for the
//! campaign executor and the parallel fulfillment backend.
//!
//! Two bundles of pre-registered handles keep the hot paths allocation-
//! and lock-free:
//!
//! * [`CampaignObs`] — executor-level counters (`engine_*`): run
//!   completions, failures, retries, journal writes and journal
//!   **errors** (the silently-swallowed failure class this layer was
//!   built to expose), plus resume bookkeeping. Carries the campaign's
//!   single [`Tracer`], so executor events (`run_done`, `run_failed`,
//!   `journal_error`, `resume`) and the per-run hybrid events share one
//!   monotonic sequence stream.
//! * [`BackendObs`] — worker-pool counters (`backend_*`): batches, jobs,
//!   shared-cache hits, real simulator evaluations and transient-failure
//!   retries, plus scheduling-only gauges/histograms (queue depth,
//!   queue wait, fulfill latency).
//!
//! # Determinism contract
//!
//! Counters in both bundles mirror algorithmic decisions that are a pure
//! function of the campaign spec: per-run work is deterministic, cache
//! hit **totals** are deterministic (`hits = lookups − distinct`, pinned
//! by the in-flight dedup protocol), and failed/retried attempt counts
//! derive from deterministic fault streams. Counter snapshots therefore
//! compare bitwise-equal across worker counts. Gauges and histograms
//! observe scheduling and wall-clock; they are exported only with timing
//! enabled and carry no cross-worker guarantee. Trace events have
//! deterministic *fields* but completion-order (scheduling-dependent)
//! sequence numbers.

use krigeval_core::hybrid::HybridObs;
use krigeval_obs::{Counter, Gauge, Histogram, Registry, Tracer};

/// Pre-registered executor metrics plus the campaign-wide tracer.
///
/// Construct once per campaign and pass by reference through
/// [`crate::executor::ExecOptions::obs`]; the executor and (via
/// [`CampaignObs::hybrid_obs`] / [`CampaignObs::backend_obs`]) every
/// run's evaluator stack share the same registry and sequence stream.
pub struct CampaignObs {
    registry: Registry,
    tracer: Tracer,
    timing: bool,
    /// Runs that completed successfully.
    pub(crate) runs_completed: Counter,
    /// Runs that failed permanently (skipped rows and fatal failures).
    pub(crate) runs_failed: Counter,
    /// Retry attempts granted to transient failures.
    pub(crate) run_retries: Counter,
    /// Attempts that ended in a caught panic.
    pub(crate) run_panics: Counter,
    /// Attempts that ended in a structured run error.
    pub(crate) run_errors: Counter,
    /// Journal lines written successfully.
    pub(crate) journal_writes: Counter,
    /// Journal writes that failed (the headline bugfix metric: these
    /// were previously dropped on stderr and lost).
    pub(crate) journal_errors: Counter,
    /// Rows replayed from a resume journal instead of re-executed.
    pub(crate) resume_rows: Counter,
    /// Runs owned (and not already journalled) by a `campaign shard`
    /// invocation.
    pub(crate) shard_runs: Counter,
    /// Shard files consumed by a `campaign merge`.
    pub(crate) merge_shards: Counter,
    /// Rows (runs + failures) reassembled by a `campaign merge`.
    pub(crate) merge_rows: Counter,
    /// Per-run wall clock (scheduling-dependent; timing only).
    pub(crate) run_wall_us: Histogram,
}

impl std::fmt::Debug for CampaignObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignObs")
            .field("tracer", &self.tracer)
            .field("timing", &self.timing)
            .finish_non_exhaustive()
    }
}

impl CampaignObs {
    /// Registers the executor metric set (`engine_*`) in `registry` and
    /// pairs it with `tracer` (the campaign's single sequence stream).
    pub fn new(registry: &Registry, tracer: Tracer) -> CampaignObs {
        CampaignObs {
            registry: registry.clone(),
            tracer,
            timing: false,
            runs_completed: registry.counter("engine_runs_completed_total"),
            runs_failed: registry.counter("engine_runs_failed_total"),
            run_retries: registry.counter("engine_run_retries_total"),
            run_panics: registry.counter("engine_run_panics_total"),
            run_errors: registry.counter("engine_run_errors_total"),
            journal_writes: registry.counter("engine_journal_writes_total"),
            journal_errors: registry.counter("engine_journal_errors_total"),
            resume_rows: registry.counter("engine_resume_rows_total"),
            shard_runs: registry.counter("engine_shard_runs_total"),
            merge_shards: registry.counter("engine_merge_shards_total"),
            merge_rows: registry.counter("engine_merge_rows_total"),
            run_wall_us: registry.histogram("engine_run_wall_us"),
        }
    }

    /// Enables (or disables) wall-clock histograms in the derived
    /// per-run bundles (and timing fields on emitted events' sinks).
    #[must_use]
    pub fn with_timing(mut self, timing: bool) -> CampaignObs {
        self.timing = timing;
        self
    }

    /// The registry every derived bundle registers into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The campaign's tracer (shared sequence stream).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether wall-clock histograms are recorded.
    pub fn timing(&self) -> bool {
        self.timing
    }

    /// A hybrid-evaluator bundle sharing this campaign's registry and
    /// tracer (handles are idempotent: every run updates the same
    /// campaign-wide `hybrid_*` counters).
    pub fn hybrid_obs(&self) -> HybridObs {
        HybridObs::new(&self.registry, self.tracer.clone()).with_timing(self.timing)
    }

    /// A worker-pool bundle sharing this campaign's registry and tracer.
    pub fn backend_obs(&self) -> BackendObs {
        BackendObs::new(&self.registry, self.tracer.clone()).with_timing(self.timing)
    }

    /// Records `rows` journal rows replayed by a resume (counter plus a
    /// `resume` trace event).
    pub fn record_resume(&self, rows: u64) {
        self.resume_rows.add(rows);
        self.tracer.emit("resume", vec![("rows", rows.into())]);
    }

    /// Records one `campaign shard` invocation: which partition slot this
    /// process owns and how many runs it will execute.
    pub fn record_shard(&self, index: u64, of: u64, runs: u64) {
        self.shard_runs.add(runs);
        self.tracer.emit(
            "shard",
            vec![
                ("index", index.into()),
                ("of", of.into()),
                ("runs", runs.into()),
            ],
        );
    }

    /// Records one `campaign merge`: how many shard files were consumed
    /// and how many rows the reassembled artifact carries.
    pub fn record_merge(&self, shards: u64, rows: u64) {
        self.merge_shards.add(shards);
        self.merge_rows.add(rows);
        self.tracer.emit(
            "merge",
            vec![("shards", shards.into()), ("rows", rows.into())],
        );
    }
}

/// Pre-registered worker-pool metrics for
/// [`crate::backend::EngineBackend`].
pub struct BackendObs {
    pub(crate) tracer: Tracer,
    pub(crate) timing: bool,
    /// Fulfilled batches.
    pub(crate) batches: Counter,
    /// Simulation jobs across all batches.
    pub(crate) jobs: Counter,
    /// Jobs answered by the shared simulation cache (total is
    /// deterministic: `hits = lookups − distinct`).
    pub(crate) cache_hits: Counter,
    /// Real simulator invocations (cache misses).
    pub(crate) evaluations: Counter,
    /// Transient-failure retries inside the pool's compute loop.
    pub(crate) retries: Counter,
    /// Jobs currently enqueued (scheduling-dependent).
    pub(crate) queue_depth: Gauge,
    /// Wall-clock per fulfilled batch (timing only).
    pub(crate) fulfill_us: Histogram,
    /// Enqueue-to-dequeue wait per job (timing only).
    pub(crate) queue_wait_us: Histogram,
}

impl std::fmt::Debug for BackendObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendObs")
            .field("tracer", &self.tracer)
            .field("timing", &self.timing)
            .finish_non_exhaustive()
    }
}

impl BackendObs {
    /// Registers the worker-pool metric set (`backend_*`) in `registry`.
    pub fn new(registry: &Registry, tracer: Tracer) -> BackendObs {
        BackendObs {
            tracer,
            timing: false,
            batches: registry.counter("backend_batches_total"),
            jobs: registry.counter("backend_jobs_total"),
            cache_hits: registry.counter("backend_sim_cache_hits_total"),
            evaluations: registry.counter("backend_evaluations_total"),
            retries: registry.counter("backend_retries_total"),
            queue_depth: registry.gauge("backend_queue_depth"),
            fulfill_us: registry.histogram("backend_fulfill_us"),
            queue_wait_us: registry.histogram("backend_queue_wait_us"),
        }
    }

    /// Enables (or disables) the wall-clock histograms.
    #[must_use]
    pub fn with_timing(mut self, timing: bool) -> BackendObs {
        self.timing = timing;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use krigeval_obs::RingSink;

    #[test]
    fn campaign_obs_registers_engine_counters() {
        let registry = Registry::new();
        let obs = CampaignObs::new(&registry, Tracer::disabled());
        obs.runs_completed.inc();
        obs.journal_errors.add(2);
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("engine_runs_completed_total"), Some(1));
        assert_eq!(get("engine_journal_errors_total"), Some(2));
        assert_eq!(get("engine_runs_failed_total"), Some(0));
    }

    #[test]
    fn derived_bundles_share_registry_and_sequence_stream() {
        let registry = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        let obs = CampaignObs::new(&registry, Tracer::new(vec![ring.clone()]));
        obs.record_resume(3);
        let hybrid = obs.hybrid_obs();
        hybrid.tracer().emit("query", vec![]);
        let backend = obs.backend_obs();
        backend.tracer.emit("batch_fulfill", vec![]);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "one sequence stream across layers");
        let snap = registry.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, _)| n == "hybrid_queries_total"));
        assert!(snap
            .counters
            .iter()
            .any(|(n, _)| n == "backend_batches_total"));
        assert_eq!(
            snap.counters
                .iter()
                .find(|(n, _)| n == "engine_resume_rows_total")
                .map(|(_, v)| *v),
            Some(3)
        );
    }

    #[test]
    fn shard_and_merge_events_hit_their_counters() {
        let registry = Registry::new();
        let ring = Arc::new(RingSink::new(8));
        let obs = CampaignObs::new(&registry, Tracer::new(vec![ring.clone()]));
        obs.record_shard(1, 3, 5);
        obs.record_merge(3, 14);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine_shard_runs_total"), Some(5));
        assert_eq!(snap.counter("engine_merge_shards_total"), Some(3));
        assert_eq!(snap.counter("engine_merge_rows_total"), Some(14));
        let names: Vec<String> = ring.snapshot().iter().map(|e| e.name.to_string()).collect();
        assert_eq!(names, vec!["shard", "merge"]);
    }

    #[test]
    fn timing_flag_propagates_to_derived_bundles() {
        let registry = Registry::new();
        let obs = CampaignObs::new(&registry, Tracer::disabled()).with_timing(true);
        assert!(obs.backend_obs().timing);
    }
}
