//! Declarative campaign descriptions and their expansion into runs.
//!
//! A [`CampaignSpec`] is the serializable description of an experiment
//! grid: which benchmarks, which optimizer, which `d` / `N_n,min` /
//! `λ_min` values to sweep, the variogram policy, the distance metric and
//! the seed. [`CampaignSpec::expand`] turns it into the flat, ordered list
//! of [`RunSpec`]s the executor consumes; the expansion order (benchmark →
//! repeat → d → N_n,min → λ_min) is part of the format, because run
//! indices identify rows in the JSONL output.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

pub use krigeval_core::hybrid::{ApproxSettings, GatePolicy, NuggetPolicy};
pub use krigeval_core::ModelSelection;

use crate::fault::{FaultConfig, FaultPolicy};
use crate::suite::Problem;
use crate::Scale;

/// Which optimizer drives the design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerSpec {
    /// Pick the problem's canonical optimizer: min+1 for word-length
    /// problems, steepest-descent budgeting for the sensitivity problem.
    Auto,
    /// Force plain min+1 (word-length problems only).
    MinPlusOne,
    /// min+1 with tie-break-by-simulation in the refine phase: kriged
    /// candidates within `tolerance` of the best are re-simulated before
    /// the greedy choice commits.
    TieBreak {
        /// Tie window in metric units (dB or rate).
        tolerance: f64,
    },
    /// Force steepest-descent error budgeting (sensitivity problem only).
    Descent,
}

impl OptimizerSpec {
    /// Short label for records and progress lines.
    pub fn label(&self) -> String {
        match self {
            OptimizerSpec::Auto => "auto".to_string(),
            OptimizerSpec::MinPlusOne => "minplusone".to_string(),
            OptimizerSpec::TieBreak { tolerance } => format!("tiebreak({tolerance})"),
            OptimizerSpec::Descent => "descent".to_string(),
        }
    }
}

/// How each run obtains its variogram model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VariogramSpec {
    /// The Table I protocol: a pure-simulation **pilot** run of the same
    /// optimizer identifies the model once, then the hybrid run uses it as
    /// fixed. Pilot simulations go through the shared campaign cache, so
    /// sweeping `d` repeats the pilot at near-zero cost.
    Pilot,
    /// Identify online, once `min_samples` simulations have accumulated
    /// (the hybrid evaluator's own fit-after policy).
    FitAfter {
        /// Simulations required before the first identification.
        min_samples: usize,
    },
    /// Re-identify every `every` simulations after the first fit.
    Refit {
        /// Simulations required before the first identification.
        min_samples: usize,
        /// Refit period (in simulations).
        every: usize,
    },
    /// Skip identification entirely: a fixed linear model `γ(d) = s·d`.
    FixedLinear {
        /// Slope `s`.
        slope: f64,
    },
    /// Skip identification entirely: an arbitrary fixed model (used by the
    /// variogram-family ablation to force spherical/exponential/Gaussian
    /// fits).
    Fixed {
        /// The model every run uses verbatim.
        model: krigeval_core::VariogramModel,
    },
}

impl VariogramSpec {
    /// Short label for records and progress lines.
    pub fn label(&self) -> String {
        match self {
            VariogramSpec::Pilot => "pilot".to_string(),
            VariogramSpec::FitAfter { min_samples } => format!("fit({min_samples})"),
            VariogramSpec::Refit { min_samples, every } => {
                format!("refit({min_samples},{every})")
            }
            VariogramSpec::FixedLinear { slope } => format!("linear({slope})"),
            VariogramSpec::Fixed { model } => {
                use krigeval_core::VariogramModel as M;
                let family = match model {
                    M::Nugget { .. } => "nugget",
                    M::Linear { .. } => "linear",
                    M::Power { .. } => "power",
                    M::Spherical { .. } => "spherical",
                    M::Exponential { .. } => "exponential",
                    M::Gaussian { .. } => "gaussian",
                    _ => "other",
                };
                format!("fixed({family})")
            }
        }
    }
}

/// A declarative experiment campaign: the cross product of benchmarks,
/// repeats, distances, neighbour minima and constraints, under one
/// optimizer / variogram / metric policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (recorded in the JSONL summary).
    pub name: String,
    /// Benchmark names, as accepted by `Problem::parse` (e.g. `"fir"`).
    pub benchmarks: Vec<String>,
    /// `"fast"` or `"paper"`.
    pub scale: String,
    /// Which optimizer drives each run.
    pub optimizer: OptimizerSpec,
    /// Neighbour radii `d` to sweep (the paper uses `{2, 3, 4, 5}`).
    pub distances: Vec<f64>,
    /// Minimum neighbour counts `N_n,min` to sweep (the paper uses 3, and
    /// 2 in the closing ablation).
    pub min_neighbors: Vec<usize>,
    /// Accuracy constraints `λ_min` to sweep; empty keeps each problem's
    /// canonical constraint.
    pub lambda_min: Vec<f64>,
    /// Variogram identification policy.
    pub variogram: VariogramSpec,
    /// Configuration distance metric: `"l1"` (paper), `"l2"` or `"linf"`.
    pub metric: String,
    /// Base seed; repeat `r` perturbs it so repeated runs see independent
    /// benchmark inputs, and `seed = 0, repeats = 1` reproduces the
    /// repository's canonical instances.
    pub seed: u64,
    /// Number of repeats per grid cell (different derived seeds).
    pub repeats: u32,
    /// Audit mode: re-simulate every kriged query and record Eq. 11/12
    /// errors (the Table I protocol).
    pub audit: bool,
    /// In-run evaluation threads: each run's planned simulation batches fan
    /// out over this many workers (the plan/fulfill `EngineBackend`). `1`
    /// (the default) keeps the zero-overhead inline backend. Orthogonal to
    /// the executor's `--workers` (runs in parallel); results are identical
    /// for any value. `None` (and absent-from-older-spec-files) means 1.
    pub threads: Option<usize>,
    /// Cap on neighbours per kriging system; `0` means unlimited.
    pub max_neighbors: usize,
    /// What to do when a run fails; `None` means fail fast (the strict
    /// historical behaviour). Absent from older spec files.
    pub on_error: Option<FaultPolicy>,
    /// Deterministic fault injection for chaos testing; `None` (the
    /// production value) injects nothing. Absent from older spec files.
    pub faults: Option<FaultConfig>,
    /// Opt-in approximate (screened-neighbour) prediction with a
    /// leave-one-out accuracy gate; `None` (the default) keeps the exact,
    /// bitwise-pinned path. Absent from older spec files.
    pub approx: Option<ApproxSettings>,
    /// Kriged-vs-simulate decision gate; `None` (and absent from older
    /// spec files) means [`GatePolicy::Fixed`], the bitwise-pinned
    /// historical behaviour.
    pub gate: Option<GatePolicy>,
    /// Select the variogram family by fast leave-one-out cross-validation
    /// instead of weighted least squares; `None`/`false` keeps the
    /// historical weighted-SSE selection. Absent from older spec files.
    pub loo_select: Option<bool>,
    /// Nugget (measurement-noise) policy for noisy metrics; `None` (and
    /// absent from older spec files) kriges with the exact `γ(0) = 0`
    /// interpolating system.
    pub nugget: Option<NuggetPolicy>,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            name: "table1".to_string(),
            benchmarks: vec!["fir".to_string(), "iir".to_string()],
            scale: "fast".to_string(),
            optimizer: OptimizerSpec::Auto,
            distances: vec![2.0, 3.0, 4.0, 5.0],
            min_neighbors: vec![3],
            lambda_min: Vec::new(),
            variogram: VariogramSpec::Pilot,
            metric: "l1".to_string(),
            seed: 0,
            repeats: 1,
            audit: true,
            threads: None,
            max_neighbors: 32,
            on_error: None,
            faults: None,
            approx: None,
            gate: None,
            loo_select: None,
            nugget: None,
        }
    }
}

/// One fully-resolved run: a single cell of the campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Position in the campaign's expansion order (row index in the
    /// JSONL output).
    pub index: u64,
    /// The benchmark problem.
    pub problem: Problem,
    /// Experiment scale.
    pub scale: Scale,
    /// Optimizer choice.
    pub optimizer: OptimizerSpec,
    /// Neighbour radius `d`.
    pub distance: f64,
    /// Minimum neighbour count `N_n,min`.
    pub min_neighbors: usize,
    /// Constraint override; `None` keeps the problem's canonical `λ_min`.
    pub lambda_min: Option<f64>,
    /// Variogram policy.
    pub variogram: VariogramSpec,
    /// Configuration distance metric.
    pub metric: krigeval_core::DistanceMetric,
    /// Derived seed for this run's benchmark instance (base seed ⊕ repeat
    /// hash). Runs sharing `(problem, scale, run_seed)` simulate identical
    /// surfaces and therefore share cache entries.
    pub run_seed: u64,
    /// Which repeat this run belongs to.
    pub repeat: u32,
    /// Audit mode.
    pub audit: bool,
    /// In-run evaluation threads (1 = inline backend).
    pub threads: usize,
    /// Neighbour cap (`None` = unlimited).
    pub max_neighbors: Option<usize>,
    /// Deterministic fault injection (chaos testing only; `None` in
    /// production).
    pub fault: Option<FaultConfig>,
    /// Opt-in approximate prediction settings (`None` = exact path).
    pub approx: Option<ApproxSettings>,
    /// Kriged-vs-simulate decision gate.
    pub gate: GatePolicy,
    /// Variogram-family selection criterion.
    pub selection: ModelSelection,
    /// Nugget policy (`None` = exact interpolating system).
    pub nugget: Option<NuggetPolicy>,
}

/// A malformed campaign specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> SpecError {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid campaign spec: {}", self.message)
    }
}

impl Error for SpecError {}

impl CampaignSpec {
    /// Expands the grid into the ordered run list.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for unknown benchmark / scale / metric names,
    /// empty sweep axes, zero repeats, non-finite or non-positive
    /// distances, or an optimizer incompatible with a selected benchmark.
    pub fn expand(&self) -> Result<Vec<RunSpec>, SpecError> {
        let scale = Scale::parse(&self.scale)
            .ok_or_else(|| SpecError::new(format!("unknown scale {:?}", self.scale)))?;
        let metric = parse_metric(&self.metric)?;
        if self.benchmarks.is_empty() {
            return Err(SpecError::new("no benchmarks selected"));
        }
        if self.distances.is_empty() {
            return Err(SpecError::new("no distances selected"));
        }
        if self.min_neighbors.is_empty() {
            return Err(SpecError::new("no min_neighbors selected"));
        }
        if self.repeats == 0 {
            return Err(SpecError::new("repeats must be at least 1"));
        }
        for &d in &self.distances {
            if !d.is_finite() || d <= 0.0 {
                return Err(SpecError::new(format!("invalid distance {d}")));
            }
        }
        for &n in &self.min_neighbors {
            if n == 0 {
                return Err(SpecError::new("min_neighbors must be at least 1"));
            }
        }
        if let Some(GatePolicy::Variance { threshold }) = self.gate {
            if threshold.is_nan() || threshold <= 0.0 {
                return Err(SpecError::new(format!(
                    "invalid gate variance threshold {threshold}"
                )));
            }
        }
        if let Some(NuggetPolicy::Fixed { value }) = self.nugget {
            if !value.is_finite() || value < 0.0 {
                return Err(SpecError::new(format!("invalid nugget {value}")));
            }
        }
        let threads = self.threads.unwrap_or(1).max(1);
        if let Some(faults) = &self.faults {
            // Rates must be valid; any `threads` value is fine. Fault
            // fates are content-addressed (a pure function of the fault
            // seed, the run's surface identity and the configuration
            // words), so in-run threading — which reorders evaluations
            // but not content — composes with active injection.
            faults.validate().map_err(SpecError::new)?;
        }
        if let Some(approx) = &self.approx {
            if approx.screen_to == 0 {
                return Err(SpecError::new("approx.screen_to must be at least 1"));
            }
            if !approx.epsilon.is_finite() || approx.epsilon <= 0.0 {
                return Err(SpecError::new(format!(
                    "invalid approx.epsilon {}",
                    approx.epsilon
                )));
            }
            if approx.loo_samples == 0 {
                return Err(SpecError::new("approx.loo_samples must be at least 1"));
            }
            if approx.check_every == 0 {
                return Err(SpecError::new("approx.check_every must be at least 1"));
            }
        }
        let mut problems = Vec::new();
        for name in &self.benchmarks {
            let p = Problem::parse(name).ok_or_else(|| {
                SpecError::new(format!(
                    "unknown benchmark {name:?} (expected one of: {}, or an alias such as \
                     fir64, iir8, fft64, hevc_mc, cnn, qcnn, dct8x8)",
                    Problem::accepted_names().join(", ")
                ))
            })?;
            match self.optimizer {
                OptimizerSpec::Descent if p != Problem::Squeezenet => {
                    return Err(SpecError::new(format!(
                        "descent optimizer requires the sensitivity problem, got {name:?}"
                    )));
                }
                OptimizerSpec::MinPlusOne | OptimizerSpec::TieBreak { .. }
                    if p == Problem::Squeezenet =>
                {
                    return Err(SpecError::new(
                        "min+1 optimizers cannot drive the sensitivity problem",
                    ));
                }
                _ => {}
            }
            problems.push(p);
        }
        let mut runs = Vec::new();
        for &problem in &problems {
            for repeat in 0..self.repeats {
                let run_seed = derive_seed(self.seed, repeat);
                for &distance in &self.distances {
                    for &min_neighbors in &self.min_neighbors {
                        let lambdas: Vec<Option<f64>> = if self.lambda_min.is_empty() {
                            vec![None]
                        } else {
                            self.lambda_min.iter().map(|&l| Some(l)).collect()
                        };
                        for lambda_min in lambdas {
                            runs.push(RunSpec {
                                index: runs.len() as u64,
                                problem,
                                scale,
                                optimizer: self.optimizer,
                                distance,
                                min_neighbors,
                                lambda_min,
                                variogram: self.variogram,
                                metric,
                                run_seed,
                                repeat,
                                audit: self.audit,
                                threads,
                                max_neighbors: if self.max_neighbors == 0 {
                                    None
                                } else {
                                    Some(self.max_neighbors)
                                },
                                fault: self.faults,
                                approx: self.approx,
                                gate: self.gate.unwrap_or(GatePolicy::Fixed),
                                selection: if self.loo_select.unwrap_or(false) {
                                    ModelSelection::LeaveOneOut
                                } else {
                                    ModelSelection::WeightedSse
                                },
                                nugget: self.nugget,
                            });
                        }
                    }
                }
            }
        }
        Ok(runs)
    }

    /// Parses a spec from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed JSON or missing fields.
    pub fn from_json(json: &str) -> Result<CampaignSpec, SpecError> {
        serde_json::from_str(json).map_err(|e| SpecError::new(e.to_string()))
    }

    /// Serializes the spec as pretty JSON (the `campaign template` output).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization cannot fail")
    }
}

/// Derives the per-repeat seed. Repeat 0 keeps the base seed untouched so
/// `seed = 0` reproduces the canonical instances; later repeats mix the
/// repeat index through splitmix64-style odd multipliers to decorrelate.
fn derive_seed(base: u64, repeat: u32) -> u64 {
    if repeat == 0 {
        base
    } else {
        base ^ (u64::from(repeat)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

fn parse_metric(name: &str) -> Result<krigeval_core::DistanceMetric, SpecError> {
    match name.to_ascii_lowercase().as_str() {
        "l1" => Ok(krigeval_core::DistanceMetric::L1),
        "l2" => Ok(krigeval_core::DistanceMetric::L2),
        "linf" | "loo" => Ok(krigeval_core::DistanceMetric::Linf),
        other => Err(SpecError::new(format!("unknown metric {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_expands_in_documented_order() {
        let spec = CampaignSpec::default();
        let runs = spec.expand().unwrap();
        // 2 benchmarks × 1 repeat × 4 distances × 1 nmin × 1 lambda.
        assert_eq!(runs.len(), 8);
        assert_eq!(runs[0].problem, Problem::Fir);
        assert_eq!(runs[0].distance, 2.0);
        assert_eq!(runs[3].distance, 5.0);
        assert_eq!(runs[4].problem, Problem::Iir);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.index, i as u64);
        }
    }

    #[test]
    fn lambda_sweep_multiplies_runs() {
        let spec = CampaignSpec {
            benchmarks: vec!["fir".to_string()],
            distances: vec![3.0],
            lambda_min: vec![20.0, 28.0, 35.0],
            ..CampaignSpec::default()
        };
        let runs = spec.expand().unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[1].lambda_min, Some(28.0));
    }

    #[test]
    fn repeats_derive_distinct_seeds() {
        let spec = CampaignSpec {
            benchmarks: vec!["fir".to_string()],
            distances: vec![3.0],
            repeats: 3,
            seed: 7,
            ..CampaignSpec::default()
        };
        let runs = spec.expand().unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].run_seed, 7, "repeat 0 keeps the base seed");
        assert_ne!(runs[1].run_seed, runs[0].run_seed);
        assert_ne!(runs[2].run_seed, runs[1].run_seed);
    }

    #[test]
    fn unknown_benchmark_error_lists_accepted_names() {
        let bad = CampaignSpec {
            benchmarks: vec!["warp".to_string()],
            ..CampaignSpec::default()
        };
        let message = bad.expand().unwrap_err().to_string();
        assert!(
            message.contains("\"warp\""),
            "names the offender: {message}"
        );
        for name in Problem::accepted_names() {
            assert!(
                message.contains(name),
                "error must list {name:?}: {message}"
            );
        }
    }

    #[test]
    fn every_accepted_name_and_label_round_trips() {
        // label() -> parse() must be the identity for all eight problems,
        // and the names the error message advertises must all parse.
        for (problem, name) in Problem::extended().iter().zip(Problem::accepted_names()) {
            assert_eq!(Problem::parse(problem.label()), Some(*problem));
            assert_eq!(Problem::parse(name), Some(*problem));
            let spec = CampaignSpec {
                benchmarks: vec![name.to_string()],
                distances: vec![3.0],
                ..CampaignSpec::default()
            };
            let runs = spec.expand().unwrap();
            assert_eq!(runs.len(), 1);
            assert_eq!(runs[0].problem, *problem);
        }
    }

    #[test]
    fn expand_rejects_bad_specs() {
        let bad_bench = CampaignSpec {
            benchmarks: vec!["warp".to_string()],
            ..CampaignSpec::default()
        };
        assert!(bad_bench.expand().is_err());
        let bad_scale = CampaignSpec {
            scale: "huge".to_string(),
            ..CampaignSpec::default()
        };
        assert!(bad_scale.expand().is_err());
        let bad_metric = CampaignSpec {
            metric: "manhattan?".to_string(),
            ..CampaignSpec::default()
        };
        assert!(bad_metric.expand().is_err());
        let no_d = CampaignSpec {
            distances: Vec::new(),
            ..CampaignSpec::default()
        };
        assert!(no_d.expand().is_err());
        let descent_on_fir = CampaignSpec {
            benchmarks: vec!["fir".to_string()],
            optimizer: OptimizerSpec::Descent,
            ..CampaignSpec::default()
        };
        assert!(descent_on_fir.expand().is_err());
        let minplusone_on_cnn = CampaignSpec {
            benchmarks: vec!["squeezenet".to_string()],
            optimizer: OptimizerSpec::MinPlusOne,
            ..CampaignSpec::default()
        };
        assert!(minplusone_on_cnn.expand().is_err());
    }

    #[test]
    fn expand_rejects_edge_cases_with_actionable_messages() {
        let zero_repeats = CampaignSpec {
            repeats: 0,
            ..CampaignSpec::default()
        };
        assert_eq!(
            zero_repeats.expand().unwrap_err().to_string(),
            "invalid campaign spec: repeats must be at least 1"
        );
        let no_benchmarks = CampaignSpec {
            benchmarks: Vec::new(),
            ..CampaignSpec::default()
        };
        assert_eq!(
            no_benchmarks.expand().unwrap_err().to_string(),
            "invalid campaign spec: no benchmarks selected"
        );
        let no_nmin = CampaignSpec {
            min_neighbors: Vec::new(),
            ..CampaignSpec::default()
        };
        assert_eq!(
            no_nmin.expand().unwrap_err().to_string(),
            "invalid campaign spec: no min_neighbors selected"
        );
        for bad_d in [-3.0, 0.0, f64::NAN, f64::INFINITY] {
            let spec = CampaignSpec {
                distances: vec![2.0, bad_d],
                ..CampaignSpec::default()
            };
            let message = spec.expand().unwrap_err().to_string();
            assert!(
                message.starts_with("invalid campaign spec: invalid distance"),
                "d = {bad_d}: {message}"
            );
        }
    }

    #[test]
    fn expand_validates_fault_rates() {
        let bad_rate = CampaignSpec {
            faults: Some(FaultConfig {
                panic_rate: 1.5,
                ..FaultConfig::default()
            }),
            ..CampaignSpec::default()
        };
        let message = bad_rate.expand().unwrap_err().to_string();
        assert!(
            message.contains("panic_rate must be in [0, 1]"),
            "{message}"
        );
        let good = CampaignSpec {
            faults: Some(FaultConfig {
                error_rate: 0.01,
                seed: 5,
                ..FaultConfig::default()
            }),
            on_error: Some(FaultPolicy::Retry { max: 2 }),
            ..CampaignSpec::default()
        };
        let runs = good.expand().unwrap();
        assert_eq!(runs[0].fault, good.faults, "faults propagate to each run");
    }

    #[test]
    fn specs_without_failure_fields_still_parse() {
        // Spec files written before the fault-policy and approx fields
        // existed must keep loading; the absent fields default to the
        // strict, exact-path behaviour.
        let legacy = CampaignSpec::default();
        let mut json = legacy.to_json();
        json = json
            .lines()
            .filter(|line| {
                !line.contains("on_error")
                    && !line.contains("faults")
                    && !line.contains("approx")
                    && !line.contains("\"gate\"")
                    && !line.contains("loo_select")
                    && !line.contains("nugget")
            })
            .collect::<Vec<_>>()
            .join("\n")
            // The field before the removed trailing pairs must not keep a
            // dangling comma.
            .replace("\"max_neighbors\": 32,", "\"max_neighbors\": 32");
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back.on_error, None);
        assert_eq!(back.faults, None);
        assert_eq!(back.approx, None);
        assert_eq!(back.gate, None);
        assert_eq!(back.loo_select, None);
        assert_eq!(back.nugget, None);
        assert_eq!(back, legacy);
        let run = &back.expand().unwrap()[0];
        assert_eq!(run.gate, GatePolicy::Fixed);
        assert_eq!(run.selection, ModelSelection::WeightedSse);
        assert_eq!(run.nugget, None);
    }

    #[test]
    fn expand_validates_gate_and_nugget_knobs() {
        for bad in [f64::NAN, 0.0, -1.0] {
            let spec = CampaignSpec {
                gate: Some(GatePolicy::Variance { threshold: bad }),
                ..CampaignSpec::default()
            };
            let message = spec.expand().unwrap_err().to_string();
            assert!(
                message.contains("gate variance threshold"),
                "threshold {bad}: {message}"
            );
        }
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            let spec = CampaignSpec {
                nugget: Some(NuggetPolicy::Fixed { value: bad }),
                ..CampaignSpec::default()
            };
            let message = spec.expand().unwrap_err().to_string();
            assert!(
                message.contains("invalid nugget"),
                "nugget {bad}: {message}"
            );
        }
        let zero_nmin = CampaignSpec {
            min_neighbors: vec![3, 0],
            ..CampaignSpec::default()
        };
        assert_eq!(
            zero_nmin.expand().unwrap_err().to_string(),
            "invalid campaign spec: min_neighbors must be at least 1"
        );
        let good = CampaignSpec {
            gate: Some(GatePolicy::Variance { threshold: 2.5 }),
            loo_select: Some(true),
            nugget: Some(NuggetPolicy::Estimate),
            ..CampaignSpec::default()
        };
        let run = &good.expand().unwrap()[0];
        assert_eq!(run.gate, GatePolicy::Variance { threshold: 2.5 });
        assert_eq!(run.selection, ModelSelection::LeaveOneOut);
        assert_eq!(run.nugget, Some(NuggetPolicy::Estimate));
    }

    #[test]
    fn specs_without_threads_default_to_inline() {
        let legacy = CampaignSpec::default();
        let json = legacy
            .to_json()
            .lines()
            .filter(|line| !line.contains("\"threads\""))
            .collect::<Vec<_>>()
            .join("\n");
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back.threads, None);
        assert_eq!(back.expand().unwrap()[0].threads, 1);
        assert_eq!(back, legacy);
    }

    #[test]
    fn threads_compose_with_active_faults() {
        // Historical behaviour rejected `threads > 1` with active fault
        // rates (fault streams were keyed on the serial call order).
        // Fates are content-addressed now, so the combination expands
        // cleanly and both settings reach every run.
        let spec = CampaignSpec {
            threads: Some(4),
            faults: Some(FaultConfig {
                error_rate: 0.01,
                seed: 5,
                ..FaultConfig::default()
            }),
            on_error: Some(FaultPolicy::Retry { max: 2 }),
            ..CampaignSpec::default()
        };
        let runs = spec.expand().unwrap();
        assert_eq!(runs[0].threads, 4);
        assert_eq!(runs[0].fault, spec.faults);
        // Invalid rates are still rejected, threaded or not.
        let bad = CampaignSpec {
            threads: Some(4),
            faults: Some(FaultConfig {
                error_rate: 1.5,
                ..FaultConfig::default()
            }),
            ..CampaignSpec::default()
        };
        assert!(bad
            .expand()
            .unwrap_err()
            .to_string()
            .contains("error_rate must be in [0, 1]"));
        // Inactive fault config (all rates zero) stays fine too.
        let inactive = CampaignSpec {
            threads: Some(4),
            faults: Some(FaultConfig::default()),
            ..CampaignSpec::default()
        };
        let runs = inactive.expand().unwrap();
        assert_eq!(runs[0].threads, 4);
    }

    #[test]
    fn spec_json_roundtrip_is_lossless() {
        let spec = CampaignSpec {
            optimizer: OptimizerSpec::TieBreak { tolerance: 0.5 },
            variogram: VariogramSpec::FitAfter { min_samples: 12 },
            lambda_min: vec![30.0],
            repeats: 2,
            seed: 42,
            ..CampaignSpec::default()
        };
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let err = CampaignSpec::from_json("{\"name\": \"x\"}").unwrap_err();
        assert!(err.to_string().contains("invalid campaign spec"));
    }
}
