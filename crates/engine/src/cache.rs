//! Shared, concurrent simulation memo-cache.
//!
//! The campaign grid re-simulates heavily: every `(d, N_n,min, λ_min)`
//! cell of one benchmark drives the *same* deterministic simulator over
//! largely overlapping configuration sets (the min+1 phase-1 descent in
//! particular is identical across cells), and the Table I pilot run is
//! repeated per cell. [`SimCache`] memoizes exact simulation results
//! keyed by `(namespace, configuration)` — where the namespace encodes
//! `(benchmark, scale, run seed)`, i.e. everything that determines the
//! simulated surface — so concurrent runs pay for each distinct
//! simulation once.
//!
//! **In-flight deduplication:** when several workers sweep the same
//! surface (a `d` sweep schedules all cells of one benchmark at once),
//! they request the same configurations nearly simultaneously — before
//! the first result lands. [`SimCache::get_or_compute`] therefore marks a
//! key *pending* while one worker simulates it; other workers block on
//! the shard's condvar and receive the finished value instead of
//! re-simulating. Total distinct simulations stay at the sequential
//! count for any worker schedule.
//!
//! The cache stores only values the underlying simulator would have
//! produced anyway (it never stores kriged estimates — interpolated
//! points must never feed back into kriging data, and a cached value is
//! indistinguishable from a fresh simulation), so enabling it changes
//! wall-clock time, not results.
//!
//! **Failure containment:** a computation that returns `Err` *or panics*
//! withdraws its pending marker and wakes every waiter, so one crashed
//! simulation can never wedge concurrent runs of the same configuration —
//! they retry the computation themselves. Shard locks recover from
//! poisoning (see `Shard::lock`): a panicking holder leaves the map
//! consistent, never half-written.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use krigeval_core::evaluator::{AccuracyEvaluator, EvalError};
use krigeval_core::Config;

/// Number of independently-locked shards; a small power of two is plenty
/// for the worker counts campaigns use.
const SHARDS: usize = 16;

type Key = (String, Config);

#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Some worker is simulating this configuration right now.
    Pending,
    /// The memoized simulation result.
    Ready(f64),
}

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<Key, Slot>>,
    ready: Condvar,
}

impl Shard {
    /// Locks the shard map, **recovering from poisoning**.
    ///
    /// Poison recovery is sound here because every critical section performs
    /// a single `HashMap` operation (`get` / `insert` / `remove`), each of
    /// which leaves the map structurally consistent even if the holding
    /// thread panics immediately after: a poisoned shard never contains a
    /// half-written entry, only complete `Pending`/`Ready` slots. Stale
    /// `Pending` markers left by a panicked computation are cleared by
    /// [`PendingGuard`], not by lock poisoning.
    fn lock(&self) -> MutexGuard<'_, HashMap<Key, Slot>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Clears a `Pending` marker if the computing closure unwinds.
///
/// Without this, a panic inside `compute` would leave the marker in place
/// forever and every concurrent [`SimCache::get_or_compute`] on the same key
/// would block on the condvar indefinitely. Dropping the guard during unwind
/// removes the marker and wakes all waiters, so they race to retry the
/// computation instead of wedging.
struct PendingGuard<'a> {
    shard: &'a Shard,
    key: Option<Key>,
}

impl PendingGuard<'_> {
    /// Disarms the guard: the caller has taken over the marker.
    fn disarm(&mut self) -> Key {
        self.key.take().expect("pending guard disarmed twice")
    }
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.shard.lock().remove(&key);
            self.shard.ready.notify_all();
        }
    }
}

/// Aggregate cache counters, defined so they are **deterministic** for a
/// fixed campaign regardless of scheduling: `misses` counts *distinct*
/// entries stored (two workers racing on the same configuration dedupe to
/// one miss via the pending protocol) and `hits = lookups − misses`.
/// Per-run hit *attribution* remains scheduling-dependent — which is why
/// the JSONL sink reports cache statistics at campaign level only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that did not require a new distinct simulation.
    pub hits: u64,
    /// Distinct entries stored (simulations a cache-less campaign would
    /// repeat).
    pub misses: u64,
}

/// A sharded concurrent memo-cache for exact simulation results.
#[derive(Debug, Default)]
pub struct SimCache {
    shards: [Shard; SHARDS],
    lookups: AtomicU64,
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> SimCache {
        SimCache::default()
    }

    fn shard(&self, namespace: &str, config: &Config) -> &Shard {
        // FNV-1a over the namespace and the raw config words.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in namespace.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        for &w in config {
            h = (h ^ (w as u32 as u64)).wrapping_mul(0x1000_0000_01b3);
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Looks up a memoized simulation result. Does **not** wait on pending
    /// computations (use [`SimCache::get_or_compute`] for the
    /// deduplicating path).
    pub fn get(&self, namespace: &str, config: &Config) -> Option<f64> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(namespace, config);
        let map = shard.lock();
        match map.get(&(namespace.to_string(), config.clone())) {
            Some(Slot::Ready(v)) => Some(*v),
            _ => None,
        }
    }

    /// Stores a simulation result (last write wins; concurrent writers
    /// racing on the same key store the same deterministic value).
    pub fn insert(&self, namespace: &str, config: &Config, value: f64) {
        let shard = self.shard(namespace, config);
        let mut map = shard.lock();
        map.insert((namespace.to_string(), config.clone()), Slot::Ready(value));
        shard.ready.notify_all();
    }

    /// Returns the memoized value for `(namespace, config)`, computing it
    /// with `compute` on a miss. If another worker is already computing
    /// the same key, blocks until that result is published instead of
    /// duplicating the simulation.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error; the pending marker is withdrawn so a
    /// later caller retries the computation. The marker is likewise
    /// withdrawn — and waiters woken — if `compute` **panics**, so a crashed
    /// simulation can never wedge concurrent runs of the same configuration
    /// (the panic itself continues to unwind to the caller).
    pub fn get_or_compute(
        &self,
        namespace: &str,
        config: &Config,
        compute: impl FnOnce() -> Result<f64, EvalError>,
    ) -> Result<(f64, bool), EvalError> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(namespace, config);
        let key: Key = (namespace.to_string(), config.clone());
        let mut map = shard.lock();
        loop {
            match map.get(&key) {
                Some(Slot::Ready(v)) => return Ok((*v, true)),
                Some(Slot::Pending) => {
                    map = shard.ready.wait(map).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    map.insert(key.clone(), Slot::Pending);
                    break;
                }
            }
        }
        drop(map);
        // Armed across `compute`: clears the marker on unwind.
        let mut pending = PendingGuard {
            shard,
            key: Some(key),
        };
        let outcome = compute();
        let key = pending.disarm();
        let mut map = shard.lock();
        match outcome {
            Ok(value) => {
                map.insert(key, Slot::Ready(value));
                shard.ready.notify_all();
                Ok((value, false))
            }
            Err(e) => {
                map.remove(&key);
                shard.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Number of distinct results stored (pending markers excluded).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the aggregate counters (see [`CacheStats`] for why
    /// misses are derived from the distinct-entry count).
    pub fn stats(&self) -> CacheStats {
        let lookups = self.lookups.load(Ordering::Relaxed);
        let misses = self.len() as u64;
        CacheStats {
            lookups,
            hits: lookups.saturating_sub(misses),
            misses,
        }
    }
}

/// Wraps an evaluator with a shared [`SimCache`]: hits skip the simulator
/// entirely, misses simulate (deduplicating in-flight work with other
/// workers) and publish the result.
///
/// [`AccuracyEvaluator::evaluations`] reports only *real* simulator calls
/// (misses), so `N_λ` accounting still reflects work a cache-less run
/// would have to do per distinct configuration.
pub struct CachedEvaluator<E> {
    inner: E,
    cache: Arc<SimCache>,
    namespace: String,
    hits: u64,
}

impl<E: AccuracyEvaluator> CachedEvaluator<E> {
    /// Wraps `inner`, memoizing into `cache` under `namespace`.
    pub fn new(inner: E, cache: Arc<SimCache>, namespace: impl Into<String>) -> CachedEvaluator<E> {
        CachedEvaluator {
            inner,
            cache,
            namespace: namespace.into(),
            hits: 0,
        }
    }

    /// Cache hits served to this wrapper (scheduling-dependent under
    /// parallel execution; reported on stderr progress only).
    pub fn local_hits(&self) -> u64 {
        self.hits
    }

    /// Borrows the wrapped evaluator.
    pub fn inner_ref(&self) -> &E {
        &self.inner
    }
}

impl<E: AccuracyEvaluator> AccuracyEvaluator for CachedEvaluator<E> {
    fn evaluate(&mut self, config: &Config) -> Result<f64, EvalError> {
        let (value, was_hit) = self
            .cache
            .get_or_compute(&self.namespace, config, || self.inner.evaluate(config))?;
        if was_hit {
            self.hits += 1;
        }
        Ok(value)
    }

    fn num_variables(&self) -> usize {
        self.inner.num_variables()
    }

    fn evaluations(&self) -> u64 {
        self.inner.evaluations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krigeval_core::FnEvaluator;

    #[test]
    fn cache_roundtrip_and_stats() {
        let cache = SimCache::new();
        let w = vec![3, 4];
        assert_eq!(cache.get("fir", &w), None);
        cache.insert("fir", &w, 1.5);
        assert_eq!(cache.get("fir", &w), Some(1.5));
        // Same config under a different namespace is a distinct entry.
        assert_eq!(cache.get("iir", &w), None);
        let s = cache.stats();
        assert_eq!(s.lookups, 3);
        // One distinct simulation was stored, so two of the three lookups
        // required no new distinct work.
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_compute_memoizes_and_reports_hits() {
        let cache = SimCache::new();
        let w = vec![5, 6];
        let mut calls = 0;
        let (v, hit) = cache
            .get_or_compute("ns", &w, || {
                calls += 1;
                Ok(7.25)
            })
            .unwrap();
        assert_eq!((v, hit, calls), (7.25, false, 1));
        let (v, hit) = cache
            .get_or_compute("ns", &w, || panic!("must not recompute"))
            .unwrap();
        assert_eq!((v, hit), (7.25, true));
    }

    #[test]
    fn failed_computation_withdraws_the_pending_marker() {
        let cache = SimCache::new();
        let w = vec![1];
        assert!(cache
            .get_or_compute("ns", &w, || Err(EvalError::msg("boom")))
            .is_err());
        // The key is retryable, not wedged.
        let (v, hit) = cache.get_or_compute("ns", &w, || Ok(2.0)).unwrap();
        assert_eq!((v, hit), (2.0, false));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_evaluator_skips_repeat_simulations() {
        let cache = Arc::new(SimCache::new());
        let mut ev = CachedEvaluator::new(
            FnEvaluator::new(2, |w: &Config| Ok(f64::from(w[0] * 10 + w[1]))),
            Arc::clone(&cache),
            "test",
        );
        assert_eq!(ev.evaluate(&vec![1, 2]).unwrap(), 12.0);
        assert_eq!(ev.evaluate(&vec![1, 2]).unwrap(), 12.0);
        assert_eq!(ev.evaluations(), 1, "second call was a cache hit");
        assert_eq!(ev.local_hits(), 1);
        // A second evaluator sharing the cache also hits.
        let mut ev2 = CachedEvaluator::new(
            FnEvaluator::new(2, |_: &Config| panic!("must not simulate")),
            Arc::clone(&cache),
            "test",
        );
        assert_eq!(ev2.evaluate(&vec![1, 2]).unwrap(), 12.0);
    }

    #[test]
    fn concurrent_workers_deduplicate_in_flight_computations() {
        use std::sync::atomic::AtomicU64;
        let cache = Arc::new(SimCache::new());
        let computes = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computes = &computes;
                scope.spawn(move || {
                    for i in 0..50i32 {
                        let w = vec![i % 10];
                        let (v, _) = cache
                            .get_or_compute("ns", &w, || {
                                computes.fetch_add(1, Ordering::Relaxed);
                                // Widen the in-flight window so threads
                                // actually overlap on the same key.
                                std::thread::sleep(std::time::Duration::from_millis(1));
                                Ok(f64::from(i % 10) * 3.0)
                            })
                            .unwrap();
                        assert_eq!(v, f64::from(i % 10) * 3.0);
                    }
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::Relaxed),
            10,
            "each distinct key must be computed exactly once"
        );
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.stats().misses, 10);
    }

    #[test]
    fn concurrent_inserts_and_lookups_are_consistent() {
        let cache = Arc::new(SimCache::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let w = vec![i % 50, t];
                        cache.insert("ns", &w, f64::from(i % 50 * 100 + t));
                        assert_eq!(cache.get("ns", &w), Some(f64::from(i % 50 * 100 + t)));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 200);
    }

    #[test]
    fn panicking_computation_clears_the_pending_marker() {
        let cache = Arc::new(SimCache::new());
        let w = vec![9];
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_compute("ns", &w, || panic!("injected simulator crash"));
        }));
        assert!(panicked.is_err(), "panic must propagate to the caller");
        // The marker is gone: a later caller computes instead of wedging.
        let (v, hit) = cache.get_or_compute("ns", &w, || Ok(4.0)).unwrap();
        assert_eq!((v, hit), (4.0, false));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn panicking_computation_wakes_concurrent_waiters() {
        use std::sync::atomic::AtomicU64;
        let cache = Arc::new(SimCache::new());
        let w = vec![3];
        let computes = AtomicU64::new(0);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            // Crasher: takes the pending marker, signals the waiter, then
            // panics mid-computation.
            scope.spawn(|| {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = cache.get_or_compute("ns", &w, || {
                        barrier.wait();
                        // Give the waiter time to block on the condvar.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("injected simulator crash")
                    });
                }));
            });
            // Waiter: arrives while the marker is held; must be woken by the
            // crasher's unwind and retry the computation itself.
            scope.spawn(|| {
                barrier.wait();
                std::thread::sleep(std::time::Duration::from_millis(5));
                let (v, _) = cache
                    .get_or_compute("ns", &w, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        Ok(11.0)
                    })
                    .unwrap();
                assert_eq!(v, 11.0);
            });
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1, "waiter retried");
        assert_eq!(cache.get("ns", &w), Some(11.0));
    }

    #[test]
    fn poisoned_shard_lock_is_recovered() {
        // Poison a shard mutex by panicking while holding it (via the map
        // lock inside a catch_unwind), then verify the cache still serves
        // reads and writes instead of propagating the poison.
        let cache = Arc::new(SimCache::new());
        let w = vec![7];
        cache.insert("ns", &w, 1.0);
        let c2 = Arc::clone(&cache);
        let w2 = w.clone();
        let handle = std::thread::spawn(move || {
            let shard = c2.shard("ns", &w2);
            let _guard = shard.lock();
            panic!("poison the shard");
        });
        assert!(handle.join().is_err());
        assert_eq!(cache.get("ns", &w), Some(1.0));
        cache.insert("ns", &vec![8], 2.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_types_are_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimCache>();
        assert_send_sync::<Arc<SimCache>>();
    }
}
