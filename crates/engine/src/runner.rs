//! Executes one resolved [`RunSpec`]: builds the benchmark instance,
//! obtains a variogram model per the spec's policy, drives the optimizer
//! through the hybrid evaluator, and distils the session into a
//! [`RunRecord`].
//!
//! Every simulation — pilot and hybrid alike — goes through the shared
//! [`SimCache`], namespaced by `(benchmark, scale, run seed)`: exactly the
//! inputs that determine the simulated surface. Kriged estimates are never
//! cached (interpolated points must never feed back as kriging data), so
//! the cache changes wall-clock time only, never results.

use std::sync::Arc;
use std::time::Instant;

use krigeval_core::evaluator::AccuracyEvaluator;
use krigeval_core::hybrid::{HybridEvaluator, HybridSettings, HybridStats, VariogramPolicy};
use krigeval_core::opt::descent::{budget_error_sources, DescentOptions};
use krigeval_core::opt::minplusone::{optimize, optimize_with_tie_break, MinPlusOneOptions};
use krigeval_core::opt::{DseEvaluator, OptError, OptimizationResult, SimulateAll};
use krigeval_core::variogram::{fit_model, EmpiricalVariogram, ModelFamily};
use krigeval_core::{EvalBackend, FiniteGuard, VariogramModel};

use crate::backend::EngineBackend;
use crate::cache::{CachedEvaluator, SimCache};
use crate::fault::{FaultConfig, FaultInjectingEvaluator, FaultPhase, FaultStream};
use crate::obs::CampaignObs;
use crate::sink::RunRecord;
use crate::spec::{OptimizerSpec, RunSpec, VariogramSpec};
use crate::suite::{build_seeded, ProblemInstance};

/// Cache namespace for a run: everything that determines the simulated
/// surface, nothing that does not (``d``, ``N_n,min``, ``λ_min`` and the
/// variogram policy all share one namespace).
pub fn cache_namespace(run: &RunSpec) -> String {
    format!(
        "{}/{}/{:016x}",
        run.problem.label(),
        run.scale.label(),
        run.run_seed
    )
}

/// The content-addressed fault stream for one attempt of one run phase,
/// or `None` when the run injects no faults. Keyed on the run's cache
/// namespace — `benchmark/scale/run_seed`, the same content identity the
/// cache uses — so the serial stack, the worker pool and a process shard
/// all draw identical fates for identical configurations.
fn fault_stream(run: &RunSpec, attempt: u32, phase: FaultPhase) -> Option<FaultStream> {
    run.fault
        .filter(FaultConfig::is_active)
        .map(|config| FaultStream::new(config, &cache_namespace(run), attempt, phase))
}

/// The full per-phase evaluator stack, ordered so each layer's contract
/// holds: the shared cache memoizes only real simulator output, the
/// fault injector sits *outside* the cache (so scheduling accidents —
/// which worker's lookup happens to miss — can never change which calls
/// draw faults), and the finite guard sits outermost, converting any
/// non-finite value (injected or organic) into an error before it can
/// reach the cache consumer's store or the optimizer.
fn stacked_evaluator(
    evaluator: Box<dyn AccuracyEvaluator + Send>,
    run: &RunSpec,
    cache: &Arc<SimCache>,
    attempt: u32,
    phase: FaultPhase,
) -> FiniteGuard<FaultInjectingEvaluator<CachedEvaluator<Box<dyn AccuracyEvaluator + Send>>>> {
    FiniteGuard::new(FaultInjectingEvaluator::new(
        CachedEvaluator::new(evaluator, Arc::clone(cache), cache_namespace(run)),
        fault_stream(run, attempt, phase),
    ))
}

/// The parallel counterpart of [`stacked_evaluator`] for `threads > 1`
/// runs: one fresh simulator per worker (each behind its own
/// [`FiniteGuard`], so non-finite values error before they can be cached),
/// fanning planned batches out while deduplicating through the same shared
/// cache namespace. The same content-addressed fault stream the serial
/// stack would use gates every pool computation (before the cache, inside
/// the worker's panic containment), so active fault injection composes
/// with any worker count and draws bitwise-identical fates.
fn engine_backend(
    run: &RunSpec,
    cache: &Arc<SimCache>,
    attempt: u32,
    phase: FaultPhase,
    obs: Option<&CampaignObs>,
) -> EngineBackend {
    let backend = EngineBackend::new(
        || {
            Box::new(FiniteGuard::new(resolved_instance(run).evaluator))
                as Box<dyn AccuracyEvaluator + Send>
        },
        run.threads,
        Arc::clone(cache),
        cache_namespace(run),
    )
    .with_faults(fault_stream(run, attempt, phase));
    match obs {
        Some(obs) => backend.with_obs(obs.backend_obs()),
        None => backend,
    }
}

fn resolved_instance(run: &RunSpec) -> ProblemInstance {
    let mut instance = build_seeded(run.problem, run.scale, run.run_seed);
    if let Some(lambda) = run.lambda_min {
        if let Some(opts) = instance.minplusone.as_mut() {
            opts.lambda_min = lambda;
        }
        if let Some(opts) = instance.descent.as_mut() {
            opts.lambda_min = lambda;
        }
    }
    instance
}

fn drive(
    evaluator: &mut dyn DseEvaluator,
    optimizer: OptimizerSpec,
    minplusone: Option<&MinPlusOneOptions>,
    descent: Option<&DescentOptions>,
) -> Result<OptimizationResult, OptError> {
    match optimizer {
        OptimizerSpec::Auto => {
            if let Some(opts) = minplusone {
                optimize(evaluator, opts)
            } else if let Some(opts) = descent {
                budget_error_sources(evaluator, opts)
            } else {
                unreachable!("every problem has an optimizer")
            }
        }
        OptimizerSpec::MinPlusOne => {
            let opts = minplusone.expect("validated by CampaignSpec::expand");
            optimize(evaluator, opts)
        }
        OptimizerSpec::TieBreak { tolerance } => {
            let opts = minplusone.expect("validated by CampaignSpec::expand");
            optimize_with_tie_break(evaluator, opts, tolerance)
        }
        OptimizerSpec::Descent => {
            let opts = descent.expect("validated by CampaignSpec::expand");
            budget_error_sources(evaluator, opts)
        }
    }
}

/// Identifies the variogram by the Table I pilot protocol: a pure-simulation
/// run of the same optimizer, fitted over the deduplicated `(config, λ)`
/// trajectory. Returns the model and the number of **distinct** pilot
/// configurations (the deterministic measure of pilot cost — repeat pilots
/// across grid cells are served by the shared cache).
fn pilot_model(
    run: &RunSpec,
    cache: &Arc<SimCache>,
    attempt: u32,
    obs: Option<&CampaignObs>,
) -> Result<(VariogramModel, u64), OptError> {
    let instance = resolved_instance(run);
    // Tie-breaking re-simulates ties, which is a no-op distinction under
    // pure simulation; the plain optimizer gives the identical pilot
    // trajectory at lower bookkeeping cost.
    let optimizer = match run.optimizer {
        OptimizerSpec::TieBreak { .. } => OptimizerSpec::MinPlusOne,
        other => other,
    };
    let result = if run.threads > 1 {
        let mut pilot = SimulateAll(engine_backend(run, cache, attempt, FaultPhase::Pilot, obs));
        drive(
            &mut pilot,
            optimizer,
            instance.minplusone.as_ref(),
            instance.descent.as_ref(),
        )?
    } else {
        let mut pilot = SimulateAll(stacked_evaluator(
            instance.evaluator,
            run,
            cache,
            attempt,
            FaultPhase::Pilot,
        ));
        drive(
            &mut pilot,
            optimizer,
            instance.minplusone.as_ref(),
            instance.descent.as_ref(),
        )?
    };
    // Deduplicate configurations (revisits would create zero-distance pairs).
    let mut configs: Vec<Vec<i32>> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for step in &result.trace.steps {
        if !configs.contains(&step.config) {
            configs.push(step.config.clone());
            values.push(step.lambda);
        }
    }
    let distinct = configs.len() as u64;
    let model = EmpiricalVariogram::from_configs(&configs, &values, run.metric)
        .and_then(|emp| fit_model(&emp, &ModelFamily::all()))
        .map(|report| report.model)
        .unwrap_or_else(|_| VariogramModel::linear(1.0));
    Ok((model, distinct))
}

fn variogram_policy(
    run: &RunSpec,
    cache: &Arc<SimCache>,
    attempt: u32,
    obs: Option<&CampaignObs>,
) -> Result<(VariogramPolicy, u64), OptError> {
    Ok(match run.variogram {
        VariogramSpec::Pilot => {
            let (model, pilot_sims) = pilot_model(run, cache, attempt, obs)?;
            (VariogramPolicy::Fixed(model), pilot_sims)
        }
        VariogramSpec::FitAfter { min_samples } => (
            VariogramPolicy::FitAfter {
                min_samples,
                families: ModelFamily::all().to_vec(),
                fallback: VariogramModel::linear(1.0),
            },
            0,
        ),
        VariogramSpec::Refit { min_samples, every } => (
            VariogramPolicy::Refit {
                min_samples,
                every,
                families: ModelFamily::all().to_vec(),
                fallback: VariogramModel::linear(1.0),
            },
            0,
        ),
        VariogramSpec::FixedLinear { slope } => {
            (VariogramPolicy::Fixed(VariogramModel::linear(slope)), 0)
        }
        VariogramSpec::Fixed { model } => (VariogramPolicy::Fixed(model), 0),
    })
}

/// Drives the optimizer through a hybrid evaluator over `backend` and
/// returns the result together with the session statistics. Generic over
/// the backend so the inline evaluator stack and the parallel
/// [`EngineBackend`] share one code path.
fn drive_hybrid<E: EvalBackend>(
    run: &RunSpec,
    minplusone: Option<&MinPlusOneOptions>,
    descent: Option<&DescentOptions>,
    settings: HybridSettings,
    backend: E,
    obs: Option<&CampaignObs>,
) -> Result<(OptimizationResult, HybridStats), OptError> {
    let mut hybrid = HybridEvaluator::new(backend, settings);
    if let Some(obs) = obs {
        hybrid.set_obs(Some(obs.hybrid_obs()));
    }
    let result = drive(&mut hybrid, run.optimizer, minplusone, descent)?;
    let stats = hybrid.stats().clone();
    Ok((result, stats))
}

/// Runs one campaign cell to completion.
///
/// # Errors
///
/// Propagates optimizer failures ([`OptError`]) from the pilot or the
/// hybrid run; an infeasible constraint indicates a mis-specified cell and
/// should surface, not be masked.
pub fn run_single(run: &RunSpec, cache: &Arc<SimCache>) -> Result<RunRecord, OptError> {
    run_single_attempt(run, cache, 0)
}

/// Runs one campaign cell as a specific retry attempt. The attempt
/// number feeds the fault-injection stream (each retry draws fresh
/// faults) and nothing else: a successful attempt produces the same
/// record regardless of its attempt number, because every record field
/// derives from the run's own deterministic session, never from shared
/// scheduling state.
///
/// # Errors
///
/// Propagates optimizer failures ([`OptError`]) from the pilot or the
/// hybrid run.
pub fn run_single_attempt(
    run: &RunSpec,
    cache: &Arc<SimCache>,
    attempt: u32,
) -> Result<RunRecord, OptError> {
    run_single_attempt_obs(run, cache, attempt, None)
}

/// [`run_single_attempt`] with an optional campaign observability
/// bundle: when present, the run's hybrid evaluator (and, for
/// `threads > 1`, its worker-pool backend) registers into the campaign's
/// shared metric registry and emits events through its tracer. Metrics
/// never influence results — the record is bit-identical with or without
/// `obs`.
///
/// # Errors
///
/// Propagates optimizer failures ([`OptError`]) from the pilot or the
/// hybrid run.
pub fn run_single_attempt_obs(
    run: &RunSpec,
    cache: &Arc<SimCache>,
    attempt: u32,
    obs: Option<&CampaignObs>,
) -> Result<RunRecord, OptError> {
    let started = Instant::now();
    let (policy, pilot_sims) = variogram_policy(run, cache, attempt, obs)?;
    let instance = resolved_instance(run);
    let lambda_min = instance
        .minplusone
        .as_ref()
        .map(|o| o.lambda_min)
        .or(instance.descent.as_ref().map(|o| o.lambda_min))
        .expect("every problem has an optimizer");
    let settings = HybridSettings {
        distance: run.distance,
        min_neighbors: run.min_neighbors,
        metric: run.metric,
        variogram: policy,
        max_neighbors: run.max_neighbors,
        audit: run.audit.then(|| run.problem.audit_metric()),
        approx: run.approx,
        gate: run.gate,
        selection: run.selection,
        nugget: run.nugget,
    };
    let minplusone = instance.minplusone;
    let descent = instance.descent;
    let (result, stats) = if run.threads > 1 {
        drive_hybrid(
            run,
            minplusone.as_ref(),
            descent.as_ref(),
            settings,
            engine_backend(run, cache, attempt, FaultPhase::Hybrid, obs),
            obs,
        )?
    } else {
        drive_hybrid(
            run,
            minplusone.as_ref(),
            descent.as_ref(),
            settings,
            stacked_evaluator(instance.evaluator, run, cache, attempt, FaultPhase::Hybrid),
            obs,
        )?
    };
    let stats = &stats;
    Ok(RunRecord {
        index: run.index,
        benchmark: run.problem.label().to_string(),
        metric: run.problem.metric_label().to_string(),
        scale: run.scale.label().to_string(),
        optimizer: run.optimizer.label(),
        variogram: run.variogram.label(),
        nv: run.problem.nv(),
        d: run.distance,
        min_neighbors: run.min_neighbors,
        lambda_min,
        seed: run.run_seed,
        repeat: run.repeat,
        solution: result.solution.clone(),
        lambda: result.lambda,
        iterations: result.iterations,
        queries: stats.queries,
        simulated: stats.simulated,
        kriged: stats.kriged,
        session_cache_hits: stats.cache_hits,
        kriging_failures: stats.kriging_failures,
        gate: run.gate.label(),
        gate_rejections: stats.gate_rejections,
        p_percent: stats.interpolated_fraction() * 100.0,
        mean_neighbors: stats.mean_neighbors(),
        mean_variance: stats.mean_variance(),
        audit_mean_eps: stats.errors.mean(),
        audit_max_eps: stats.errors.max(),
        audit_count: stats.errors.count(),
        pilot_sims,
        wall_ms: Some(started.elapsed().as_secs_f64() * 1000.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, OptimizerSpec, VariogramSpec};

    fn fir_run(d: f64) -> RunSpec {
        let spec = CampaignSpec {
            benchmarks: vec!["fir".to_string()],
            distances: vec![d],
            ..CampaignSpec::default()
        };
        spec.expand().unwrap().remove(0)
    }

    #[test]
    fn fir_cell_runs_and_audits() {
        let cache = Arc::new(SimCache::new());
        let record = run_single(&fir_run(3.0), &cache).unwrap();
        assert_eq!(record.benchmark, "fir64");
        assert_eq!(record.nv, 2);
        assert!(record.queries > 0);
        assert!(record.simulated > 0);
        assert!(record.pilot_sims > 0, "pilot protocol ran");
        assert!(record.lambda >= record.lambda_min);
        assert!(record.wall_ms.is_some());
    }

    #[test]
    fn shared_cache_spares_repeat_simulations() {
        let cache = Arc::new(SimCache::new());
        let first = run_single(&fir_run(3.0), &cache).unwrap();
        let before = cache.stats();
        // A second cell on the same surface (different d) repeats the pilot
        // and much of the trajectory: its simulations mostly hit the cache.
        let second = run_single(&fir_run(2.0), &cache).unwrap();
        let after = cache.stats();
        assert!(
            after.hits > before.hits,
            "no cache hits across cells: {before:?} -> {after:?}"
        );
        // The cached values are exact, so both records stand on the same
        // simulated surface.
        assert_eq!(first.benchmark, second.benchmark);
        assert_eq!(first.seed, second.seed);
    }

    #[test]
    fn fixed_linear_policy_skips_the_pilot() {
        let cache = Arc::new(SimCache::new());
        let mut run = fir_run(3.0);
        run.variogram = VariogramSpec::FixedLinear { slope: 1.0 };
        let record = run_single(&run, &cache).unwrap();
        assert_eq!(record.pilot_sims, 0);
        assert!(record.queries > 0);
    }

    #[test]
    fn tie_break_optimizer_is_accepted() {
        let cache = Arc::new(SimCache::new());
        let mut run = fir_run(3.0);
        run.optimizer = OptimizerSpec::TieBreak { tolerance: 0.5 };
        let record = run_single(&run, &cache).unwrap();
        assert!(record.optimizer.starts_with("tiebreak"));
        assert!(record.lambda >= record.lambda_min);
    }

    #[test]
    fn threaded_runs_reproduce_inline_records() {
        let inline = run_single(&fir_run(3.0), &Arc::new(SimCache::new())).unwrap();
        let mut threaded_run = fir_run(3.0);
        threaded_run.threads = 4;
        let threaded = run_single(&threaded_run, &Arc::new(SimCache::new())).unwrap();
        let strip = |mut r: RunRecord| {
            r.wall_ms = None;
            r
        };
        assert_eq!(strip(inline), strip(threaded));
    }

    #[test]
    fn lambda_override_applies() {
        let cache = Arc::new(SimCache::new());
        let mut run = fir_run(3.0);
        run.lambda_min = Some(20.0);
        let record = run_single(&run, &cache).unwrap();
        assert_eq!(record.lambda_min, 20.0);
        assert!(record.lambda >= 20.0);
    }
}
