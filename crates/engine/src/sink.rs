//! JSONL result sink: one line per run plus a campaign summary line.
//!
//! Lines are objects tagged with a `"type"` field (`"run"` /
//! `"failed"` / `"journal_error"` / `"summary"`) so consumers can
//! stream-filter them.
//! Records are written in run-index order regardless of completion
//! order, and all scheduling-dependent quantities (wall-clock, worker
//! count, shared-cache counters) live in fields nulled by default —
//! with [`SinkOptions::include_timing`] off, a fixed-seed campaign
//! serializes byte-identically across runs, worker counts **and
//! journal resumes** (a resumed campaign re-executes only part of the
//! work, so anything measuring execution rather than results must stay
//! out of the deterministic output).
//!
//! The same serialization doubles as the **crash journal**: a
//! [`JournalWriter`] appends each completed line (in completion order)
//! with an immediate flush, and [`load_journal`] parses a possibly
//! truncated journal back into records so an interrupted campaign can
//! resume from where it stopped.

use std::error::Error;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use krigeval_flate::DeflateWriter;
use serde::{Deserialize, Serialize, Value};

use crate::cache::CacheStats;
use crate::executor::RunError;
use crate::spec::RunSpec;

/// One completed run: the resolved grid cell plus the outcome and the
/// hybrid session statistics (the raw material of a Table I row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Position in the campaign expansion (stable row id).
    pub index: u64,
    /// Benchmark label (e.g. `"fir64"`).
    pub benchmark: String,
    /// Metric label (e.g. `"noise power"`).
    pub metric: String,
    /// `"fast"` or `"paper"`.
    pub scale: String,
    /// Optimizer label.
    pub optimizer: String,
    /// Variogram policy label.
    pub variogram: String,
    /// Number of optimization variables `Nv`.
    pub nv: usize,
    /// Neighbour radius `d`.
    pub d: f64,
    /// Minimum neighbour count `N_n,min`.
    pub min_neighbors: usize,
    /// Effective accuracy constraint `λ_min`.
    pub lambda_min: f64,
    /// Derived seed of this run's benchmark instance.
    pub seed: u64,
    /// Repeat index within the campaign.
    pub repeat: u32,
    /// Final configuration `w_res`.
    pub solution: Vec<i32>,
    /// Metric value at the solution (as the optimizer saw it).
    pub lambda: f64,
    /// Greedy iterations performed.
    pub iterations: u64,
    /// Total metric queries `N_λ`.
    pub queries: u64,
    /// Queries answered by simulation.
    pub simulated: u64,
    /// Queries answered by kriging.
    pub kriged: u64,
    /// Queries answered from the session's exact-duplicate store.
    pub session_cache_hits: u64,
    /// Kriging attempts that fell back to simulation.
    pub kriging_failures: u64,
    /// Decision-gate label (`"fixed"` or `"variance(τ)"`).
    pub gate: String,
    /// Converged solves rejected by the decision gate (simulated instead).
    pub gate_rejections: u64,
    /// Interpolated percentage `p(%)`.
    pub p_percent: f64,
    /// Mean neighbours per interpolation `j̄`.
    pub mean_neighbors: f64,
    /// Mean kriging variance `σ̄²` over accepted interpolations.
    pub mean_variance: f64,
    /// Audit-mode mean interpolation error (Eq. 11/12 units).
    pub audit_mean_eps: f64,
    /// Audit-mode max interpolation error.
    pub audit_max_eps: f64,
    /// Number of audited interpolations.
    pub audit_count: u64,
    /// Simulator calls spent on the variogram pilot run (0 for online
    /// identification policies). Distinct configurations only — repeat
    /// pilot queries are served by the campaign cache.
    pub pilot_sims: u64,
    /// Wall-clock milliseconds (scheduling-dependent; `None` unless
    /// [`SinkOptions::include_timing`] is set).
    pub wall_ms: Option<f64>,
}

/// A run that failed permanently (after any retries) under a
/// non-fail-fast [`crate::fault::FaultPolicy`]. Serialized as a tagged
/// `"failed"` JSONL row so downstream tables can tell "no result"
/// apart from "never ran". Every field is deterministic for a fixed
/// spec and fault seed — failed rows replay byte-identically from a
/// resume journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Position in the campaign expansion (stable row id, shared with
    /// [`RunRecord::index`]).
    pub index: u64,
    /// Benchmark label.
    pub benchmark: String,
    /// `"fast"` or `"paper"`.
    pub scale: String,
    /// Neighbour radius `d`.
    pub d: f64,
    /// Minimum neighbour count `N_n,min`.
    pub min_neighbors: usize,
    /// Derived seed of this run's benchmark instance.
    pub seed: u64,
    /// Repeat index within the campaign.
    pub repeat: u32,
    /// Human-readable description of the final error.
    pub error: String,
    /// Attempts consumed (1 = no retries granted or needed).
    pub attempts: u32,
}

impl FailureRecord {
    /// Distils a run's final error into its failure row.
    pub fn from_run(run: &RunSpec, error: &RunError, attempts: u32) -> FailureRecord {
        FailureRecord {
            index: run.index,
            benchmark: run.problem.label().to_string(),
            scale: run.scale.label().to_string(),
            d: run.distance,
            min_neighbors: run.min_neighbors,
            seed: run.run_seed,
            repeat: run.repeat,
            error: error.to_string(),
            attempts,
        }
    }
}

/// A journal write that failed for an otherwise-completed row under a
/// non-fail-fast policy. Serialized as a tagged `"journal_error"` JSONL
/// row so the loss is visible in the final output instead of vanishing
/// on stderr (under fail-fast the campaign aborts with
/// [`crate::executor::EngineError::Journal`] instead). The row's run
/// still appears as its normal `"run"` / `"failed"` line — only the
/// crash-resume journal missed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalErrorRecord {
    /// Index of the run whose journal line was lost.
    pub index: u64,
    /// The I/O error, rendered.
    pub error: String,
}

/// The campaign-level trailer record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRecord {
    /// Campaign name from the spec.
    pub name: String,
    /// Number of runs completed.
    pub runs: u64,
    /// Number of runs that failed permanently (skip / retry policies).
    pub failed: u64,
    /// Worker threads used (informational; does not affect results).
    pub workers: usize,
    /// Shared-cache lookups across all runs.
    pub sim_cache_lookups: u64,
    /// Shared-cache hits across all runs (deterministic in total even
    /// though per-run attribution is not).
    pub sim_cache_hits: u64,
    /// Shared-cache misses == distinct simulations performed.
    pub sim_cache_misses: u64,
    /// Sum of per-run metric queries.
    pub total_queries: u64,
    /// Sum of per-run simulated counts.
    pub total_simulated: u64,
    /// Sum of per-run kriged counts.
    pub total_kriged: u64,
    /// Campaign wall-clock milliseconds (`None` unless timing is on).
    pub wall_ms: Option<f64>,
}

impl SummaryRecord {
    /// Builds the trailer from completed records, failure rows and cache
    /// counters.
    pub fn from_records(
        name: impl Into<String>,
        records: &[RunRecord],
        failures: &[FailureRecord],
        cache: CacheStats,
        workers: usize,
        wall_ms: Option<f64>,
    ) -> SummaryRecord {
        SummaryRecord {
            name: name.into(),
            runs: records.len() as u64,
            failed: failures.len() as u64,
            workers,
            sim_cache_lookups: cache.lookups,
            sim_cache_hits: cache.hits,
            sim_cache_misses: cache.misses,
            total_queries: records.iter().map(|r| r.queries).sum(),
            total_simulated: records.iter().map(|r| r.simulated).sum(),
            total_kriged: records.iter().map(|r| r.kriged).sum(),
            wall_ms,
        }
    }
}

/// Output options for [`write_jsonl`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkOptions {
    /// Include scheduling-dependent fields (wall-clock, worker count).
    /// These are inherently nondeterministic across invocations, so this
    /// defaults to off; byte-identical output across runs and worker
    /// counts holds only when it stays off.
    pub include_timing: bool,
}

fn tagged(tag: &str, record_value: Value) -> Value {
    let mut fields = vec![("type".to_string(), Value::String(tag.to_string()))];
    match record_value {
        Value::Object(entries) => fields.extend(entries),
        other => fields.push(("value".to_string(), other)),
    }
    Value::Object(fields)
}

fn strip_scheduling(value: &mut Value) {
    if let Value::Object(entries) = value {
        for (key, v) in entries.iter_mut() {
            // Wall-clock, the worker count and the shared-cache counters
            // are execution metadata: they vary across machines,
            // invocations and (for the cache counters) journal resumes —
            // a resumed campaign does not redo the cached simulations of
            // the runs it replays — while the results do not, so the
            // deterministic output nulls them all.
            if matches!(
                key.as_str(),
                "wall_ms" | "workers" | "sim_cache_lookups" | "sim_cache_hits" | "sim_cache_misses"
            ) {
                *v = Value::Null;
            }
        }
    }
}

pub(crate) fn render_line(tag: &str, value: Value, options: SinkOptions) -> io::Result<String> {
    let mut line = tagged(tag, value);
    if !options.include_timing {
        strip_scheduling(&mut line);
    }
    serde_json::to_string(&line).map_err(io::Error::other)
}

/// Writes the campaign as JSON lines: run and failure records merged in
/// index order, then the summary.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_jsonl(
    out: &mut dyn Write,
    records: &[RunRecord],
    failures: &[FailureRecord],
    summary: &SummaryRecord,
    options: SinkOptions,
) -> io::Result<()> {
    write_jsonl_full(out, records, failures, &[], summary, options)
}

/// [`write_jsonl`] plus tagged `"journal_error"` rows (sorted by index,
/// placed between the merged run/failure stream and the summary). With
/// no journal errors the output is byte-identical to [`write_jsonl`].
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_jsonl_full(
    out: &mut dyn Write,
    records: &[RunRecord],
    failures: &[FailureRecord],
    journal_errors: &[JournalErrorRecord],
    summary: &SummaryRecord,
    options: SinkOptions,
) -> io::Result<()> {
    write_rows(out, records, failures, options)?;
    for journal_error in journal_errors {
        let text = render_line("journal_error", journal_error.serialize_to_value(), options)?;
        writeln!(out, "{text}")?;
    }
    let text = render_line("summary", summary.serialize_to_value(), options)?;
    writeln!(out, "{text}")?;
    Ok(())
}

/// Writes only the merged row stream: run and failure records
/// interleaved in index order, no trailer. This is the row body shared
/// by the finalized campaign output ([`write_jsonl_full`] adds journal
/// errors and the summary) and by finalized shard artifacts
/// ([`crate::shard::render_shard`] prepends the manifest line) — one
/// renderer, so a merged set of shards is byte-identical to the
/// single-process output by construction.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_rows(
    out: &mut dyn Write,
    records: &[RunRecord],
    failures: &[FailureRecord],
    options: SinkOptions,
) -> io::Result<()> {
    // Merge the two sorted-by-index streams so each campaign row appears
    // at its expansion position whether it succeeded or failed.
    let (mut r, mut f) = (0, 0);
    while r < records.len() || f < failures.len() {
        let run_next = match (records.get(r), failures.get(f)) {
            (Some(rec), Some(fail)) => rec.index <= fail.index,
            (Some(_), None) => true,
            _ => false,
        };
        let text = if run_next {
            r += 1;
            render_line("run", records[r - 1].serialize_to_value(), options)?
        } else {
            f += 1;
            render_line("failed", failures[f - 1].serialize_to_value(), options)?
        };
        writeln!(out, "{text}")?;
    }
    Ok(())
}

/// Renders records to a JSONL string (convenience over [`write_jsonl`]).
///
/// # Panics
///
/// Never panics: writing to a `Vec<u8>` cannot fail and records are
/// always serializable.
pub fn to_jsonl_string(
    records: &[RunRecord],
    failures: &[FailureRecord],
    summary: &SummaryRecord,
    options: SinkOptions,
) -> String {
    to_jsonl_string_full(records, failures, &[], summary, options)
}

/// Renders records plus journal-error rows to a JSONL string
/// (convenience over [`write_jsonl_full`]).
///
/// # Panics
///
/// Never panics: writing to a `Vec<u8>` cannot fail and records are
/// always serializable.
pub fn to_jsonl_string_full(
    records: &[RunRecord],
    failures: &[FailureRecord],
    journal_errors: &[JournalErrorRecord],
    summary: &SummaryRecord,
    options: SinkOptions,
) -> String {
    let mut buf = Vec::new();
    write_jsonl_full(
        &mut buf,
        records,
        failures,
        journal_errors,
        summary,
        options,
    )
    .expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("JSON output is UTF-8")
}

/// An append-only, flush-per-line crash journal shared by campaign
/// workers.
///
/// Each completed run (or permanent failure) is serialized as exactly
/// the JSONL line the final output would contain and flushed before the
/// executor moves on, so a killed campaign leaves a journal of every
/// finished row — in completion order, which is fine because rows carry
/// their index. A torn final line (the process died mid-write) is
/// tolerated by [`load_journal`].
pub struct JournalWriter {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter").finish_non_exhaustive()
    }
}

impl JournalWriter {
    /// Opens `path` truncated (a fresh campaign).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JournalWriter> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(JournalWriter::from_writer(file))
    }

    /// Opens `path` truncated as a **compressed** journal: every line is
    /// DEFLATE-compressed and each flush ends on a sync-flush block
    /// boundary, so the flush-per-line crash-journal contract holds on
    /// the compressed bytes too. The stream is intentionally never
    /// finished — read it back with the tail-tolerant decoder
    /// ([`read_artifact_text`] does).
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create_compressed(path: impl AsRef<Path>) -> io::Result<JournalWriter> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(JournalWriter::from_writer(DeflateWriter::new(file)))
    }

    /// Opens `path` for appending (a resumed campaign keeps extending
    /// the existing journal).
    ///
    /// # Errors
    ///
    /// Propagates file-open errors.
    pub fn append(path: impl AsRef<Path>) -> io::Result<JournalWriter> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        Ok(JournalWriter::from_writer(file))
    }

    /// Wraps any writer (tests journal into memory buffers).
    pub fn from_writer(out: impl Write + Send + 'static) -> JournalWriter {
        JournalWriter {
            out: Mutex::new(Box::new(out)),
        }
    }

    fn write_line(&self, text: &str) -> io::Result<()> {
        // Poison recovery: a writer panicking mid-line could at worst
        // leave a torn line, which load_journal tolerates; later lines
        // remain valid because each write starts at a line boundary
        // only after a successful earlier write.
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        writeln!(out, "{text}")?;
        out.flush()
    }

    /// Appends one completed run.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (the executor applies the campaign failure
    /// policy to them: fail-fast aborts, skip/retry tags the loss as a
    /// `journal_error` row).
    pub fn record(&self, record: &RunRecord, options: SinkOptions) -> io::Result<()> {
        self.write_line(&render_line("run", record.serialize_to_value(), options)?)
    }

    /// Appends one permanent failure.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn failure(&self, failure: &FailureRecord, options: SinkOptions) -> io::Result<()> {
        self.write_line(&render_line(
            "failed",
            failure.serialize_to_value(),
            options,
        )?)
    }

    /// Appends one pre-rendered JSONL line verbatim (shard manifests —
    /// [`crate::shard::ShardManifest::render`] — go through here so a
    /// shard journal starts with its identity header before any row
    /// lands).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn line(&self, text: &str) -> io::Result<()> {
        self.write_line(text)
    }
}

/// A malformed non-terminal journal line: a torn or corrupt line
/// **mid-file** means the journal cannot be trusted as a crash record
/// (only the final line may legitimately be torn), so it is surfaced as
/// a typed error instead of being silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// 1-based line number among the journal's non-empty lines.
    pub line: usize,
    /// What was wrong with the line.
    pub message: String,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.message)
    }
}

impl Error for JournalError {}

/// Parses a journal (or finalized output file) back into run and
/// failure records, each sorted by index. `"summary"` lines are
/// ignored — a resume recomputes the summary from the merged records. A
/// malformed **final** line is tolerated (the writing process was
/// killed mid-line); a malformed line anywhere else is a typed
/// [`JournalError`], never silently dropped.
///
/// # Errors
///
/// Returns the first non-terminal malformed line as a [`JournalError`].
pub fn load_journal(text: &str) -> Result<(Vec<RunRecord>, Vec<FailureRecord>), JournalError> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut records: Vec<RunRecord> = Vec::new();
    let mut failures: Vec<FailureRecord> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        let parsed: Result<Value, _> = serde_json::from_str(line);
        let value = match parsed {
            Ok(v) => v,
            Err(_) if last => break, // torn tail from a killed writer
            Err(e) => {
                return Err(JournalError {
                    line: i + 1,
                    message: e.to_string(),
                })
            }
        };
        let tag = value.get("type").and_then(Value::as_str).unwrap_or("");
        let entry = match tag {
            "run" => RunRecord::deserialize_from_value(&value)
                .map(|r| records.push(r))
                .map_err(|e| e.to_string()),
            "failed" => FailureRecord::deserialize_from_value(&value)
                .map(|f| failures.push(f))
                .map_err(|e| e.to_string()),
            // A summary is recomputed on resume; a journal_error row
            // flags a historical journal miss whose run row (if any)
            // stands on its own; a shard manifest header identifies the
            // file, not a row (per-shard resume revalidates it before
            // loading the journal).
            "summary" | "journal_error" | "shard" => Ok(()),
            other => Err(format!("unknown record type {other:?}")),
        };
        if let Err(message) = entry {
            if last {
                break;
            }
            return Err(JournalError {
                line: i + 1,
                message,
            });
        }
    }
    records.sort_by_key(|r| r.index);
    failures.sort_by_key(|f| f.index);
    Ok((records, failures))
}

/// Whether `path` names a compressed (`.z`) artifact. This extension is
/// the read-side detection key: `campaign run --resume`, `shard`, and
/// `merge` all route `.z` inputs through the tail-tolerant DEFLATE
/// decoder.
pub fn is_compressed_path(path: &Path) -> bool {
    path.extension().is_some_and(|ext| ext == "z")
}

/// Reads an artifact file as text, transparently decompressing `.z`
/// files with the **tail-tolerant** decoder so a compressed crash
/// journal with a torn tail yields the prefix of complete sync-flushed
/// lines, mirroring the plain-text torn-final-line contract. A decoded
/// prefix that ends mid-UTF-8-sequence is truncated to its valid
/// prefix; mid-file corruption (not truncation) is still an error.
///
/// # Errors
///
/// Propagates I/O errors; corrupt DEFLATE data surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_artifact_text(path: &Path) -> io::Result<String> {
    if !is_compressed_path(path) {
        return std::fs::read_to_string(path);
    }
    let raw = std::fs::read(path)?;
    let prefix = krigeval_flate::inflate_tail_tolerant(&raw)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    match String::from_utf8(prefix.data) {
        Ok(text) => Ok(text),
        Err(e) => {
            let valid = e.utf8_error().valid_up_to();
            let mut bytes = e.into_bytes();
            bytes.truncate(valid);
            Ok(String::from_utf8(bytes).expect("truncated at a UTF-8 boundary"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(index: u64) -> RunRecord {
        RunRecord {
            index,
            benchmark: "fir64".to_string(),
            metric: "noise power".to_string(),
            scale: "fast".to_string(),
            optimizer: "auto".to_string(),
            variogram: "pilot".to_string(),
            nv: 2,
            d: 3.0,
            min_neighbors: 3,
            lambda_min: 28.0,
            seed: 0,
            repeat: 0,
            solution: vec![9, 8],
            lambda: 28.4,
            iterations: 7,
            queries: 40,
            simulated: 30,
            kriged: 8,
            session_cache_hits: 2,
            kriging_failures: 0,
            gate: "fixed".to_string(),
            gate_rejections: 0,
            p_percent: 20.0,
            mean_neighbors: 4.5,
            mean_variance: 0.6,
            audit_mean_eps: 0.2,
            audit_max_eps: 0.8,
            audit_count: 8,
            pilot_sims: 25,
            wall_ms: Some(12.5),
        }
    }

    fn sample_failure(index: u64) -> FailureRecord {
        FailureRecord {
            index,
            benchmark: "fir64".to_string(),
            scale: "fast".to_string(),
            d: 3.0,
            min_neighbors: 3,
            seed: 0,
            repeat: 0,
            error: "injected transient error (config [3, 1], attempt 0)".to_string(),
            attempts: 3,
        }
    }

    #[test]
    fn jsonl_lines_are_tagged_and_ordered() {
        let records = vec![sample_record(0), sample_record(2)];
        let failures = vec![sample_failure(1)];
        let summary = SummaryRecord::from_records(
            "t",
            &records,
            &failures,
            CacheStats {
                lookups: 100,
                hits: 40,
                misses: 60,
            },
            4,
            None,
        );
        let text = to_jsonl_string(
            &records,
            &failures,
            &summary,
            SinkOptions {
                include_timing: true,
            },
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"type\":\"run\",\"index\":0,"));
        assert!(lines[1].starts_with("{\"type\":\"failed\",\"index\":1,"));
        assert!(lines[2].starts_with("{\"type\":\"run\",\"index\":2,"));
        assert!(lines[3].starts_with("{\"type\":\"summary\","));
        assert!(lines[3].contains("\"sim_cache_hits\":40"));
        assert!(lines[3].contains("\"failed\":1"));
    }

    #[test]
    fn timing_is_stripped_unless_requested() {
        let records = vec![sample_record(0)];
        let summary = SummaryRecord::from_records(
            "t",
            &records,
            &[],
            CacheStats {
                lookups: 9,
                hits: 4,
                misses: 5,
            },
            1,
            Some(99.0),
        );
        let quiet = to_jsonl_string(&records, &[], &summary, SinkOptions::default());
        assert!(quiet.contains("\"wall_ms\":null"));
        assert!(quiet.contains("\"workers\":null"));
        // Shared-cache counters measure execution (and change across
        // journal resumes), so the deterministic output nulls them too.
        assert!(quiet.contains("\"sim_cache_lookups\":null"));
        assert!(quiet.contains("\"sim_cache_hits\":null"));
        assert!(quiet.contains("\"sim_cache_misses\":null"));
        assert!(!quiet.contains("12.5"));
        let timed = to_jsonl_string(
            &records,
            &[],
            &summary,
            SinkOptions {
                include_timing: true,
            },
        );
        assert!(timed.contains("\"wall_ms\":12.5"));
        assert!(timed.contains("\"wall_ms\":99.0"));
        assert!(timed.contains("\"sim_cache_hits\":4"));
    }

    #[test]
    fn run_record_json_roundtrip() {
        let r = sample_record(3);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let f = sample_failure(5);
        let json = serde_json::to_string(&f).unwrap();
        let back: FailureRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn summary_totals_sum_over_records() {
        let records = vec![sample_record(0), sample_record(1)];
        let s = SummaryRecord::from_records("x", &records, &[], CacheStats::default(), 2, None);
        assert_eq!(s.runs, 2);
        assert_eq!(s.failed, 0);
        assert_eq!(s.total_queries, 80);
        assert_eq!(s.total_simulated, 60);
        assert_eq!(s.total_kriged, 16);
    }

    #[test]
    fn journal_roundtrips_through_load() {
        let buf = SharedBuf::default();
        let journal = {
            let journal = JournalWriter::from_writer(buf.clone());
            // Completion order is scrambled on purpose: rows carry their
            // index, load re-sorts.
            journal
                .record(&sample_record(2), SinkOptions::default())
                .unwrap();
            journal
                .failure(&sample_failure(1), SinkOptions::default())
                .unwrap();
            journal
                .record(&sample_record(0), SinkOptions::default())
                .unwrap();
            journal
        };
        drop(journal);
        let text = buf.contents();
        let (records, failures) = load_journal(&text).unwrap();
        assert_eq!(
            records.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 1);
        // Timing was stripped on write.
        assert!(records.iter().all(|r| r.wall_ms.is_none()));
    }

    #[test]
    fn load_journal_tolerates_a_torn_tail_only() {
        let good = {
            let buf = SharedBuf::default();
            let journal = JournalWriter::from_writer(buf.clone());
            journal
                .record(&sample_record(0), SinkOptions::default())
                .unwrap();
            buf.contents()
        };
        let torn = format!("{good}{{\"type\":\"run\",\"index\":1,\"bench");
        let (records, failures) = load_journal(&torn).unwrap();
        assert_eq!(records.len(), 1);
        assert!(failures.is_empty());
        let mid_corruption = format!("not json at all\n{good}");
        let err = load_journal(&mid_corruption).unwrap_err();
        assert_eq!(err.line, 1);
        let unknown = format!("{{\"type\":\"mystery\"}}\n{good}");
        let err = load_journal(&unknown).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown record type"));
    }

    #[test]
    fn torn_line_mid_file_is_a_typed_error_not_a_silent_drop() {
        // A row torn in the MIDDLE of a journal means the file cannot be
        // trusted as a crash record; it must surface as a JournalError
        // carrying the offending line number, never be skipped.
        let good = {
            let buf = SharedBuf::default();
            let journal = JournalWriter::from_writer(buf.clone());
            for i in 0..3 {
                journal
                    .record(&sample_record(i), SinkOptions::default())
                    .unwrap();
            }
            buf.contents()
        };
        let lines: Vec<&str> = good.lines().collect();
        assert_eq!(lines.len(), 3);
        // Tear line 2 of 3 (only the final line may legitimately be torn).
        let torn_mid = format!("{}\n{}\n{}\n", lines[0], &lines[1][..20], lines[2]);
        let err = load_journal(&torn_mid).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(format!("{err}"), format!("journal line 2: {}", err.message));
        // Binary garbage mid-file (e.g. a NUL-padded sector after a
        // power loss) is likewise typed, not dropped.
        let garbage = format!("{}\n\u{0}\u{0}\u{0}\u{0}\n{}\n", lines[0], lines[2]);
        let err = load_journal(&garbage).unwrap_err();
        assert_eq!(err.line, 2);
        // The same contract holds through the compressed reader: decode
        // then parse, so a mid-stream tear still surfaces.
        let compressed = krigeval_flate::compress(torn_mid.as_bytes());
        let decoded = krigeval_flate::inflate_tail_tolerant(&compressed).unwrap();
        let text = String::from_utf8(decoded.data).unwrap();
        assert_eq!(load_journal(&text).unwrap_err().line, 2);
    }

    #[test]
    fn journal_error_rows_sit_between_records_and_summary() {
        let records = vec![sample_record(0)];
        let summary =
            SummaryRecord::from_records("t", &records, &[], CacheStats::default(), 1, None);
        let journal_errors = vec![JournalErrorRecord {
            index: 0,
            error: "disk full".to_string(),
        }];
        let text = to_jsonl_string_full(
            &records,
            &[],
            &journal_errors,
            &summary,
            SinkOptions::default(),
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"run\","));
        assert_eq!(
            lines[1],
            "{\"type\":\"journal_error\",\"index\":0,\"error\":\"disk full\"}"
        );
        assert!(lines[2].starts_with("{\"type\":\"summary\","));
        // No journal errors → byte-identical to the plain writer.
        let plain = to_jsonl_string(&records, &[], &summary, SinkOptions::default());
        let full = to_jsonl_string_full(&records, &[], &[], &summary, SinkOptions::default());
        assert_eq!(plain, full);
        // load_journal tolerates the new tag.
        let (loaded, failures) = load_journal(&text).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(failures.is_empty());
    }

    #[test]
    fn load_journal_ignores_summary_lines() {
        let records = vec![sample_record(0)];
        let summary =
            SummaryRecord::from_records("t", &records, &[], CacheStats::default(), 1, None);
        let text = to_jsonl_string(&records, &[], &summary, SinkOptions::default());
        let (loaded, failures) = load_journal(&text).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(failures.is_empty());
    }

    /// A cloneable in-memory writer so tests can journal and then read
    /// back what was written.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}
