//! JSONL result sink: one line per run plus a campaign summary line.
//!
//! Lines are objects tagged with a `"type"` field (`"run"` / `"summary"`)
//! so consumers can stream-filter them. Records are written in run-index
//! order regardless of completion order, and all scheduling-dependent
//! quantities (wall-clock, per-run cache attribution) live in optional
//! fields disabled by default — with [`SinkOptions::include_timing`]
//! off, a fixed-seed campaign serializes byte-identically across runs
//! and worker counts.

use std::io::{self, Write};

use serde::{Deserialize, Serialize, Value};

use crate::cache::CacheStats;

/// One completed run: the resolved grid cell plus the outcome and the
/// hybrid session statistics (the raw material of a Table I row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Position in the campaign expansion (stable row id).
    pub index: u64,
    /// Benchmark label (e.g. `"fir64"`).
    pub benchmark: String,
    /// Metric label (e.g. `"noise power"`).
    pub metric: String,
    /// `"fast"` or `"paper"`.
    pub scale: String,
    /// Optimizer label.
    pub optimizer: String,
    /// Variogram policy label.
    pub variogram: String,
    /// Number of optimization variables `Nv`.
    pub nv: usize,
    /// Neighbour radius `d`.
    pub d: f64,
    /// Minimum neighbour count `N_n,min`.
    pub min_neighbors: usize,
    /// Effective accuracy constraint `λ_min`.
    pub lambda_min: f64,
    /// Derived seed of this run's benchmark instance.
    pub seed: u64,
    /// Repeat index within the campaign.
    pub repeat: u32,
    /// Final configuration `w_res`.
    pub solution: Vec<i32>,
    /// Metric value at the solution (as the optimizer saw it).
    pub lambda: f64,
    /// Greedy iterations performed.
    pub iterations: u64,
    /// Total metric queries `N_λ`.
    pub queries: u64,
    /// Queries answered by simulation.
    pub simulated: u64,
    /// Queries answered by kriging.
    pub kriged: u64,
    /// Queries answered from the session's exact-duplicate store.
    pub session_cache_hits: u64,
    /// Kriging attempts that fell back to simulation.
    pub kriging_failures: u64,
    /// Interpolated percentage `p(%)`.
    pub p_percent: f64,
    /// Mean neighbours per interpolation `j̄`.
    pub mean_neighbors: f64,
    /// Audit-mode mean interpolation error (Eq. 11/12 units).
    pub audit_mean_eps: f64,
    /// Audit-mode max interpolation error.
    pub audit_max_eps: f64,
    /// Number of audited interpolations.
    pub audit_count: u64,
    /// Simulator calls spent on the variogram pilot run (0 for online
    /// identification policies). Distinct configurations only — repeat
    /// pilot queries are served by the campaign cache.
    pub pilot_sims: u64,
    /// Wall-clock milliseconds (scheduling-dependent; `None` unless
    /// [`SinkOptions::include_timing`] is set).
    pub wall_ms: Option<f64>,
}

/// The campaign-level trailer record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRecord {
    /// Campaign name from the spec.
    pub name: String,
    /// Number of runs completed.
    pub runs: u64,
    /// Worker threads used (informational; does not affect results).
    pub workers: usize,
    /// Shared-cache lookups across all runs.
    pub sim_cache_lookups: u64,
    /// Shared-cache hits across all runs (deterministic in total even
    /// though per-run attribution is not).
    pub sim_cache_hits: u64,
    /// Shared-cache misses == distinct simulations performed.
    pub sim_cache_misses: u64,
    /// Sum of per-run metric queries.
    pub total_queries: u64,
    /// Sum of per-run simulated counts.
    pub total_simulated: u64,
    /// Sum of per-run kriged counts.
    pub total_kriged: u64,
    /// Campaign wall-clock milliseconds (`None` unless timing is on).
    pub wall_ms: Option<f64>,
}

impl SummaryRecord {
    /// Builds the trailer from completed records and cache counters.
    pub fn from_records(
        name: impl Into<String>,
        records: &[RunRecord],
        cache: CacheStats,
        workers: usize,
        wall_ms: Option<f64>,
    ) -> SummaryRecord {
        SummaryRecord {
            name: name.into(),
            runs: records.len() as u64,
            workers,
            sim_cache_lookups: cache.lookups,
            sim_cache_hits: cache.hits,
            sim_cache_misses: cache.misses,
            total_queries: records.iter().map(|r| r.queries).sum(),
            total_simulated: records.iter().map(|r| r.simulated).sum(),
            total_kriged: records.iter().map(|r| r.kriged).sum(),
            wall_ms,
        }
    }
}

/// Output options for [`write_jsonl`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkOptions {
    /// Include scheduling-dependent fields (wall-clock, worker count).
    /// These are inherently nondeterministic across invocations, so this
    /// defaults to off; byte-identical output across runs and worker
    /// counts holds only when it stays off.
    pub include_timing: bool,
}

fn tagged(tag: &str, record_value: Value) -> Value {
    let mut fields = vec![("type".to_string(), Value::String(tag.to_string()))];
    match record_value {
        Value::Object(entries) => fields.extend(entries),
        other => fields.push(("value".to_string(), other)),
    }
    Value::Object(fields)
}

fn strip_scheduling(value: &mut Value) {
    if let Value::Object(entries) = value {
        for (key, v) in entries.iter_mut() {
            // Wall-clock and the worker count are execution metadata: they
            // vary across machines and invocations while the results do
            // not, so the deterministic output nulls both.
            if key == "wall_ms" || key == "workers" {
                *v = Value::Null;
            }
        }
    }
}

/// Writes the campaign as JSON lines: each run record (in index order),
/// then the summary.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_jsonl(
    out: &mut dyn Write,
    records: &[RunRecord],
    summary: &SummaryRecord,
    options: SinkOptions,
) -> io::Result<()> {
    let mut lines: Vec<Value> = Vec::with_capacity(records.len() + 1);
    for r in records {
        lines.push(tagged("run", r.serialize_to_value()));
    }
    lines.push(tagged("summary", summary.serialize_to_value()));
    for mut line in lines {
        if !options.include_timing {
            strip_scheduling(&mut line);
        }
        let text = serde_json::to_string(&line).map_err(io::Error::other)?;
        writeln!(out, "{text}")?;
    }
    Ok(())
}

/// Renders records to a JSONL string (convenience over [`write_jsonl`]).
///
/// # Panics
///
/// Never panics: writing to a `Vec<u8>` cannot fail and records are
/// always serializable.
pub fn to_jsonl_string(
    records: &[RunRecord],
    summary: &SummaryRecord,
    options: SinkOptions,
) -> String {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, records, summary, options).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("JSON output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(index: u64) -> RunRecord {
        RunRecord {
            index,
            benchmark: "fir64".to_string(),
            metric: "noise power".to_string(),
            scale: "fast".to_string(),
            optimizer: "auto".to_string(),
            variogram: "pilot".to_string(),
            nv: 2,
            d: 3.0,
            min_neighbors: 3,
            lambda_min: 28.0,
            seed: 0,
            repeat: 0,
            solution: vec![9, 8],
            lambda: 28.4,
            iterations: 7,
            queries: 40,
            simulated: 30,
            kriged: 8,
            session_cache_hits: 2,
            kriging_failures: 0,
            p_percent: 20.0,
            mean_neighbors: 4.5,
            audit_mean_eps: 0.2,
            audit_max_eps: 0.8,
            audit_count: 8,
            pilot_sims: 25,
            wall_ms: Some(12.5),
        }
    }

    #[test]
    fn jsonl_lines_are_tagged_and_ordered() {
        let records = vec![sample_record(0), sample_record(1)];
        let summary = SummaryRecord::from_records(
            "t",
            &records,
            CacheStats {
                lookups: 100,
                hits: 40,
                misses: 60,
            },
            4,
            None,
        );
        let text = to_jsonl_string(&records, &summary, SinkOptions::default());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"run\",\"index\":0,"));
        assert!(lines[1].starts_with("{\"type\":\"run\",\"index\":1,"));
        assert!(lines[2].starts_with("{\"type\":\"summary\","));
        assert!(lines[2].contains("\"sim_cache_hits\":40"));
    }

    #[test]
    fn timing_is_stripped_unless_requested() {
        let records = vec![sample_record(0)];
        let summary =
            SummaryRecord::from_records("t", &records, CacheStats::default(), 1, Some(99.0));
        let quiet = to_jsonl_string(&records, &summary, SinkOptions::default());
        assert!(quiet.contains("\"wall_ms\":null"));
        assert!(quiet.contains("\"workers\":null"));
        assert!(!quiet.contains("12.5"));
        let timed = to_jsonl_string(
            &records,
            &summary,
            SinkOptions {
                include_timing: true,
            },
        );
        assert!(timed.contains("\"wall_ms\":12.5"));
        assert!(timed.contains("\"wall_ms\":99.0"));
    }

    #[test]
    fn run_record_json_roundtrip() {
        let r = sample_record(3);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn summary_totals_sum_over_records() {
        let records = vec![sample_record(0), sample_record(1)];
        let s = SummaryRecord::from_records("x", &records, CacheStats::default(), 2, None);
        assert_eq!(s.runs, 2);
        assert_eq!(s.total_queries, 80);
        assert_eq!(s.total_simulated, 60);
        assert_eq!(s.total_kriged, 16);
    }
}
