//! The full Table-I scenario matrix: every benchmark of the paper's
//! study (plus the repository's extensions) swept over the `d` /
//! `N_n,min` / gate grid in one entry point.
//!
//! A [`MatrixSpec`] is a thin layer over [`CampaignSpec`]: it expands to
//! **one campaign per benchmark** so per-benchmark policy can differ —
//! the classification-rate problems (SqueezeNet, quantized CNN) run
//! with [`NuggetPolicy::Estimate`] active, because replicated
//! classification-rate observations are noisy in exactly the way a
//! nugget models, while the noise-power problems keep the paper's
//! nugget-free kriging — then splices the per-campaign runs back into
//! one flat, sequentially indexed list for the executor. Every run
//! carries the matrix's `threads`, so the whole matrix exercises the
//! plan/fulfill [`crate::backend::EngineBackend`] when `threads > 1`.
//!
//! [`summarize`] folds the resulting records into one row per benchmark
//! (the shape of the paper's Table I: metric, `Nv`, mean `p(%)`, mean
//! `με`), and [`check_table_shape`] pins the structural expectations a
//! healthy matrix must satisfy — every benchmark present, percentages
//! in range, audit errors finite — without pinning the (scale- and
//! seed-dependent) numbers themselves.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::sink::RunRecord;
use crate::spec::{CampaignSpec, GatePolicy, NuggetPolicy, OptimizerSpec, RunSpec, SpecError};
use crate::suite::Problem;

/// The Table-I scenario matrix: all eight benchmarks crossed with a
/// `d` / `N_n,min` grid under one gate policy and one in-run thread
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Matrix name (prefixes each per-benchmark campaign name).
    pub name: String,
    /// `"fast"` or `"paper"`.
    pub scale: String,
    /// Neighbour radii `d` to sweep.
    pub distances: Vec<f64>,
    /// Minimum neighbour counts `N_n,min` to sweep.
    pub min_neighbors: Vec<usize>,
    /// Decision gate applied to every run (`None` = the paper's fixed
    /// gate).
    pub gate: Option<GatePolicy>,
    /// In-run evaluation threads; `> 1` routes every run through the
    /// plan/fulfill [`crate::backend::EngineBackend`].
    pub threads: usize,
    /// Base seed shared by every campaign.
    pub seed: u64,
    /// Repeats per grid cell.
    pub repeats: u32,
    /// Audit mode (the Table I protocol re-simulates every kriged
    /// query to measure Eq. 11/12 interpolation errors).
    pub audit: bool,
}

impl MatrixSpec {
    /// The paper's Table-I grid at paper scale: `d ∈ {2,3,4,5}`,
    /// `N_n,min = 3`, fixed gate, audit on.
    pub fn table1() -> MatrixSpec {
        MatrixSpec {
            name: "matrix".to_string(),
            scale: "paper".to_string(),
            distances: vec![2.0, 3.0, 4.0, 5.0],
            min_neighbors: vec![3],
            gate: None,
            threads: 1,
            seed: 0,
            repeats: 1,
            audit: true,
        }
    }

    /// A CI-sized smoke matrix: fast scale, a single `d = 3` /
    /// `N_n,min = 2` cell, every run through the engine backend at two
    /// threads. Completes in seconds yet still touches all eight
    /// benchmarks, both metrics and the nugget path.
    pub fn smoke() -> MatrixSpec {
        MatrixSpec {
            name: "matrix-smoke".to_string(),
            scale: "fast".to_string(),
            distances: vec![3.0],
            min_neighbors: vec![2],
            gate: None,
            threads: 2,
            seed: 0,
            repeats: 1,
            audit: true,
        }
    }

    /// The benchmarks the matrix covers, in row order.
    pub fn problems() -> [Problem; 8] {
        Problem::extended()
    }

    /// Expands to one [`CampaignSpec`] per benchmark, in
    /// [`Problem::extended`] order. The classification-rate problems
    /// get [`NuggetPolicy::Estimate`]; everything else inherits the
    /// campaign default (no nugget).
    pub fn campaigns(&self) -> Vec<CampaignSpec> {
        MatrixSpec::problems()
            .iter()
            .map(|p| {
                let noisy_metric = matches!(p, Problem::Squeezenet | Problem::QuantizedCnn);
                CampaignSpec {
                    name: format!("{}/{}", self.name, p.label()),
                    benchmarks: vec![p.label().to_string()],
                    scale: self.scale.clone(),
                    optimizer: OptimizerSpec::Auto,
                    distances: self.distances.clone(),
                    min_neighbors: self.min_neighbors.clone(),
                    seed: self.seed,
                    repeats: self.repeats,
                    audit: self.audit,
                    threads: Some(self.threads),
                    gate: self.gate,
                    nugget: noisy_metric.then_some(NuggetPolicy::Estimate),
                    ..CampaignSpec::default()
                }
            })
            .collect()
    }

    /// Flattens every per-benchmark campaign into one sequentially
    /// indexed run list (run index = JSONL row id across the whole
    /// matrix).
    ///
    /// # Errors
    ///
    /// Propagates the first invalid campaign (bad scale, empty grid…).
    pub fn expand(&self) -> Result<Vec<RunSpec>, SpecError> {
        let mut runs: Vec<RunSpec> = Vec::new();
        for campaign in self.campaigns() {
            for mut run in campaign.expand()? {
                run.index = runs.len() as u64;
                runs.push(run);
            }
        }
        Ok(runs)
    }
}

/// One row of the matrix summary table: a benchmark's identity columns
/// plus its per-run statistics averaged over the grid (the shape of
/// the paper's Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Benchmark label (e.g. `"fir64"`).
    pub benchmark: String,
    /// Metric label (`"noise power"` or `"class. rate"`).
    pub metric: String,
    /// Number of optimization variables `Nv`.
    pub nv: usize,
    /// Completed runs folded into this row.
    pub runs: u64,
    /// Mean interpolated percentage `p(%)` across the row's runs.
    pub mean_p_percent: f64,
    /// Mean audit interpolation error `με` (Eq. 11/12 units).
    pub mean_eps: f64,
    /// Worst audit interpolation error across the row's runs.
    pub max_eps: f64,
    /// Mean neighbours per interpolation `j̄`.
    pub mean_neighbors: f64,
    /// Total metric queries across the row's runs.
    pub queries: u64,
    /// Total simulated queries across the row's runs.
    pub simulated: u64,
}

/// Folds completed records into one [`MatrixRow`] per benchmark, in
/// first-appearance (= matrix expansion) order.
pub fn summarize(records: &[RunRecord]) -> Vec<MatrixRow> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: BTreeMap<String, Vec<&RunRecord>> = BTreeMap::new();
    for r in records {
        if !groups.contains_key(&r.benchmark) {
            order.push(r.benchmark.clone());
        }
        groups.entry(r.benchmark.clone()).or_default().push(r);
    }
    order
        .into_iter()
        .map(|benchmark| {
            let rows = &groups[&benchmark];
            let n = rows.len() as f64;
            let mean = |f: fn(&RunRecord) -> f64| rows.iter().map(|r| f(r)).sum::<f64>() / n;
            MatrixRow {
                metric: rows[0].metric.clone(),
                nv: rows[0].nv,
                runs: rows.len() as u64,
                mean_p_percent: mean(|r| r.p_percent),
                mean_eps: mean(|r| r.audit_mean_eps),
                max_eps: rows
                    .iter()
                    .map(|r| r.audit_max_eps)
                    .fold(f64::NEG_INFINITY, f64::max),
                mean_neighbors: mean(|r| r.mean_neighbors),
                queries: rows.iter().map(|r| r.queries).sum(),
                simulated: rows.iter().map(|r| r.simulated).sum(),
                benchmark,
            }
        })
        .collect()
}

/// Pins the structural expectations of a healthy Table-I matrix without
/// pinning scale-dependent numbers: every benchmark present exactly
/// once, identity columns (metric label, `Nv`) correct, `p ∈ [0, 100]`,
/// audit errors finite and non-negative, and the classification-rate
/// problems routed through the `"class. rate"` metric. Returns the list
/// of violations (empty = healthy).
pub fn check_table_shape(rows: &[MatrixRow]) -> Vec<String> {
    let mut violations = Vec::new();
    for p in MatrixSpec::problems() {
        let label = p.label();
        match rows.iter().filter(|r| r.benchmark == label).count() {
            1 => {}
            0 => violations.push(format!("{label}: missing from the matrix")),
            n => violations.push(format!("{label}: appears {n} times")),
        }
    }
    for row in rows {
        let b = &row.benchmark;
        match Problem::parse(b) {
            None => violations.push(format!("{b}: not a known benchmark")),
            Some(p) => {
                if row.metric != p.metric_label() {
                    violations.push(format!(
                        "{b}: metric {:?}, expected {:?}",
                        row.metric,
                        p.metric_label()
                    ));
                }
                if row.nv != p.nv() {
                    violations.push(format!("{b}: Nv {}, expected {}", row.nv, p.nv()));
                }
            }
        }
        if !(0.0..=100.0).contains(&row.mean_p_percent) {
            violations.push(format!("{b}: p = {}% out of range", row.mean_p_percent));
        }
        if !row.mean_eps.is_finite() || row.mean_eps < 0.0 {
            violations.push(format!(
                "{b}: mean eps {} not finite/non-negative",
                row.mean_eps
            ));
        }
        if row.runs > 0 && row.queries < row.simulated {
            violations.push(format!(
                "{b}: simulated {} exceeds queries {}",
                row.simulated, row.queries
            ));
        }
    }
    violations
}

/// Renders the summary as an aligned text table (the `campaign matrix`
/// CLI output).
pub fn render_matrix_table(rows: &[MatrixRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<12} {:>3} {:>5} {:>8} {:>12} {:>12} {:>6}",
        "benchmark", "metric", "Nv", "runs", "p(%)", "mean_eps", "max_eps", "jbar"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:<12} {:>3} {:>5} {:>8.2} {:>12.5} {:>12.5} {:>6.2}",
            r.benchmark,
            r.metric,
            r.nv,
            r.runs,
            r.mean_p_percent,
            r.mean_eps,
            r.max_eps,
            r.mean_neighbors
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_expands_all_benchmarks_with_per_benchmark_nugget() {
        let spec = MatrixSpec::smoke();
        let campaigns = spec.campaigns();
        assert_eq!(campaigns.len(), 8);
        for (campaign, problem) in campaigns.iter().zip(MatrixSpec::problems()) {
            assert_eq!(campaign.benchmarks, vec![problem.label().to_string()]);
            assert_eq!(campaign.threads, Some(2));
            let noisy = matches!(problem, Problem::Squeezenet | Problem::QuantizedCnn);
            assert_eq!(
                campaign.nugget,
                noisy.then_some(NuggetPolicy::Estimate),
                "{}: nugget policy",
                problem.label()
            );
        }
        let runs = spec.expand().unwrap();
        assert_eq!(runs.len(), 8);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.index, i as u64, "sequential reindexing");
            assert_eq!(run.threads, 2, "engine backend threads");
        }
        // The nugget policy survives expansion into the run specs.
        let squeezenet = runs
            .iter()
            .find(|r| r.problem == Problem::Squeezenet)
            .unwrap();
        assert_eq!(squeezenet.nugget, Some(NuggetPolicy::Estimate));
        let fir = runs.iter().find(|r| r.problem == Problem::Fir).unwrap();
        assert_eq!(fir.nugget, None);
    }

    #[test]
    fn table1_grid_matches_the_paper() {
        let spec = MatrixSpec::table1();
        assert_eq!(spec.distances, vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(spec.min_neighbors, vec![3]);
        assert_eq!(spec.scale, "paper");
        let runs = spec.expand().unwrap();
        assert_eq!(runs.len(), 8 * 4);
    }

    #[test]
    fn shape_check_flags_structural_violations() {
        let mut rows: Vec<MatrixRow> = MatrixSpec::problems()
            .iter()
            .map(|p| MatrixRow {
                benchmark: p.label().to_string(),
                metric: p.metric_label().to_string(),
                nv: p.nv(),
                runs: 1,
                mean_p_percent: 50.0,
                mean_eps: 0.1,
                max_eps: 0.2,
                mean_neighbors: 4.0,
                queries: 10,
                simulated: 5,
            })
            .collect();
        assert!(check_table_shape(&rows).is_empty());
        rows[0].mean_p_percent = 120.0;
        rows[4].metric = "noise power".to_string(); // squeezenet must be class. rate
        let removed = rows.pop().unwrap();
        let violations = check_table_shape(&rows);
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("out of range")));
        assert!(violations.iter().any(|v| v.contains("class. rate")));
        assert!(violations
            .iter()
            .any(|v| v.contains(&removed.benchmark) && v.contains("missing")));
    }

    #[test]
    fn render_produces_one_line_per_row_plus_header() {
        let rows = vec![MatrixRow {
            benchmark: "fir64".to_string(),
            metric: "noise power".to_string(),
            nv: 2,
            runs: 4,
            mean_p_percent: 33.25,
            mean_eps: 0.0123,
            max_eps: 0.2,
            mean_neighbors: 4.5,
            queries: 100,
            simulated: 60,
        }];
        let table = render_matrix_table(&rows);
        assert_eq!(table.lines().count(), 2);
        assert!(table.contains("fir64"));
        assert!(table.contains("33.25"));
    }
}
