//! The engine-backed fulfillment backend: planned simulation batches fan
//! out over a persistent worker pool.
//!
//! [`EngineBackend`] implements [`krigeval_core::EvalBackend`] on top of
//! the engine's existing machinery: one private simulator instance per
//! worker, the shared in-flight-deduplicating [`SimCache`], and an
//! attempt-counted retry loop for transient failures — the same
//! deterministic backoff the campaign executor uses. The worker threads
//! are spawned **once** at construction and parked on a condition
//! variable between batches; optimizer scan batches are narrow (one
//! candidate per variable), so per-batch thread spawns would cost as much
//! as the simulations they fan out.
//!
//! # Determinism
//!
//! The backend honours the [`EvalBackend`] contract: values are returned
//! in request order, and a failed batch reports the failure of the
//! lowest-indexed failing request regardless of which worker observed it
//! first — including injected panics, which each worker catches and the
//! fulfilling thread re-raises with the original payload, exactly as the
//! serial evaluator stack would have panicked in the caller. Because
//! each request's value is a pure function of its configuration
//! (fixed-seed simulators), each request's injected *fate* is a pure
//! function of its configuration too (the content-addressed
//! [`FaultStream`], fired **before** the cache so a scheduling accident —
//! whose lookup happens to hit — can never skip a draw), and the cache
//! only memoizes values the simulators would produce anyway, results are
//! bitwise identical across worker counts — the backend-parity and chaos
//! suites pin this for all four optimizers and for active fault
//! injection.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use krigeval_core::{AccuracyEvaluator, Config, EvalBackend, EvalError, SimulationRequest};

use crate::cache::SimCache;
use crate::fault::FaultStream;
use crate::obs::BackendObs;

/// What a worker sends back for one job: the index, and either the
/// computed result or the payload of a caught panic (re-raised by the
/// fulfilling thread if its index turns out to be the batch's
/// lowest-indexed failure).
type JobOutcome = (usize, std::thread::Result<Result<f64, EvalError>>);

/// One unit of pool work: simulate `config`, report under `index`.
struct Job {
    index: usize,
    config: Config,
    /// Enqueue instant, carried only when the attached [`BackendObs`]
    /// records timing (queue-wait histogram).
    enqueued: Option<Instant>,
}

/// State shared between the backend and its worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    cache: Arc<SimCache>,
    namespace: String,
    max_retries: AtomicU32,
    /// Underlying simulator invocations across all workers and the local
    /// serial evaluator (cache hits do not count).
    evaluations: AtomicU64,
    /// Optional metric bundle (`backend_*`), set once via
    /// [`EngineBackend::with_obs`] before the first batch.
    obs: OnceLock<BackendObs>,
    /// Optional content-addressed fault stream, set once via
    /// [`EngineBackend::with_faults`] before the first batch. Fired at
    /// the top of [`PoolShared::compute`] — before the cache, before the
    /// retry loop — so each configuration's fate is drawn exactly as the
    /// serial evaluator stack draws it.
    fault: OnceLock<FaultStream>,
}

impl PoolShared {
    /// Computes one configuration through the shared cache with the
    /// deterministic (yield-counted, never wall-clock) retry backoff.
    fn compute(
        &self,
        evaluator: &mut (dyn AccuracyEvaluator + Send),
        config: &Config,
    ) -> Result<f64, EvalError> {
        // Content-addressed injection gate: the fate of `config` is drawn
        // here, before the cache can answer and before the retry loop can
        // re-roll — injected failures are not transient at this level (the
        // campaign executor's per-run attempt counter re-keys the stream
        // instead).
        if let Some(fault) = self.fault.get() {
            fault.fire(config)?;
        }
        let max_retries = self.max_retries.load(Ordering::Relaxed);
        let mut attempt: u32 = 0;
        loop {
            let result = self.cache.get_or_compute(&self.namespace, config, || {
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = self.obs.get() {
                    obs.evaluations.inc();
                }
                evaluator.evaluate(config)
            });
            match result {
                Ok((value, cached)) => {
                    // The hit *total* is deterministic across worker
                    // counts (hits = lookups − distinct: waiters on an
                    // in-flight computation count as hits).
                    if cached {
                        if let Some(obs) = self.obs.get() {
                            obs.cache_hits.inc();
                        }
                    }
                    return Ok(value);
                }
                Err(e) => {
                    if attempt >= max_retries {
                        return Err(e);
                    }
                    if let Some(obs) = self.obs.get() {
                        obs.retries.inc();
                    }
                    attempt += 1;
                    for _ in 0..(1u32 << attempt.min(6)) {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

fn worker_loop(
    shared: &PoolShared,
    mut evaluator: Box<dyn AccuracyEvaluator + Send>,
    results: &Sender<JobOutcome>,
) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        if let (Some(enqueued), Some(obs)) = (job.enqueued, shared.obs.get()) {
            obs.queue_wait_us
                .record(enqueued.elapsed().as_secs_f64() * 1e6);
        }
        // Contain panics (injected or organic) to the job that raised
        // them: the worker survives, the payload travels to the
        // fulfilling thread, and — if this index is the batch's
        // lowest-indexed failure — is re-raised there with the original
        // message, exactly where the serial stack would have panicked.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.compute(&mut *evaluator, &job.config)
        }));
        if results.send((job.index, result)).is_err() {
            return; // backend dropped mid-batch
        }
    }
}

/// A parallel [`EvalBackend`] over a persistent worker pool and the
/// engine's shared simulation cache. See the module docs for the
/// determinism contract.
pub struct EngineBackend {
    shared: Arc<PoolShared>,
    /// Serial-path evaluator, used for single-request batches, for
    /// `fulfill_one`, and whenever `workers <= 1`.
    local: Box<dyn AccuracyEvaluator + Send>,
    results: Receiver<JobOutcome>,
    handles: Vec<JoinHandle<()>>,
    num_variables: usize,
    workers: usize,
}

impl std::fmt::Debug for EngineBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBackend")
            .field("workers", &self.workers)
            .field("namespace", &self.shared.namespace)
            .field("num_variables", &self.num_variables)
            .field(
                "max_retries",
                &self.shared.max_retries.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl EngineBackend {
    /// Builds a backend with one simulator per worker plus one for the
    /// calling thread (the factory runs `workers + 1` times up front when
    /// `workers > 1`, once otherwise) sharing `cache` under `namespace`.
    /// `workers` is clamped to at least 1; worker threads are spawned here
    /// and live until the backend is dropped.
    pub fn new(
        factory: impl Fn() -> Box<dyn AccuracyEvaluator + Send>,
        workers: usize,
        cache: Arc<SimCache>,
        namespace: impl Into<String>,
    ) -> EngineBackend {
        let workers = workers.max(1);
        let local = factory();
        let num_variables = AccuracyEvaluator::num_variables(&local);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache,
            namespace: namespace.into(),
            max_retries: AtomicU32::new(0),
            evaluations: AtomicU64::new(0),
            obs: OnceLock::new(),
            fault: OnceLock::new(),
        });
        let (tx, results) = std::sync::mpsc::channel();
        let handles = if workers > 1 {
            (0..workers)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    let tx = tx.clone();
                    let evaluator = factory();
                    std::thread::spawn(move || worker_loop(&shared, evaluator, &tx))
                })
                .collect()
        } else {
            Vec::new()
        };
        EngineBackend {
            shared,
            local,
            results,
            handles,
            num_variables,
            workers,
        }
    }

    /// Retries transient evaluation failures up to `max_retries` times per
    /// request, with the executor's deterministic (yield-counted, never
    /// wall-clock) backoff between attempts.
    #[must_use]
    pub fn with_max_retries(self, max_retries: u32) -> EngineBackend {
        self.shared
            .max_retries
            .store(max_retries, Ordering::Relaxed);
        self
    }

    /// Attaches a worker-pool metric bundle. Counters mirror the
    /// deterministic fulfillment protocol (batches, jobs, cache-hit and
    /// evaluation totals, retries); the gauge and histograms observe
    /// scheduling and are recorded only when the bundle has timing
    /// enabled. Attach before the first batch; a second call is ignored.
    #[must_use]
    pub fn with_obs(self, obs: BackendObs) -> EngineBackend {
        let _ = self.shared.obs.set(obs);
        self
    }

    /// Attaches a content-addressed [`FaultStream`]: every configuration
    /// computed through the pool (or the serial local path) first draws
    /// its fate from the stream, before the cache and before any retry.
    /// `None` — or an inactive stream — leaves the backend fault-free.
    /// Attach before the first batch; a second call is ignored.
    #[must_use]
    pub fn with_faults(self, stream: Option<FaultStream>) -> EngineBackend {
        if let Some(stream) = stream.filter(FaultStream::is_active) {
            let _ = self.shared.fault.set(stream);
        }
        self
    }

    /// Worker threads the backend fans batches over.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for EngineBackend {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl EvalBackend for EngineBackend {
    fn fulfill(&mut self, requests: &[SimulationRequest]) -> Result<Vec<f64>, EvalError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let obs = self.shared.obs.get();
        if let Some(obs) = obs {
            obs.batches.inc();
            obs.jobs.add(requests.len() as u64);
            obs.tracer
                .emit("batch_fulfill", vec![("requests", requests.len().into())]);
        }
        let batch_start = obs.filter(|o| o.timing).map(|_| Instant::now());
        let finish = |obs: Option<&BackendObs>, batch_start: Option<Instant>| {
            if let (Some(obs), Some(start)) = (obs, batch_start) {
                obs.fulfill_us.record(start.elapsed().as_secs_f64() * 1e6);
            }
        };
        if self.workers <= 1 || requests.len() <= 1 {
            // No fan-out to pay for: stay on the caller's thread (the cache
            // still deduplicates against concurrent sessions).
            let values = requests
                .iter()
                .map(|r| self.shared.compute(&mut *self.local, &r.config))
                .collect();
            finish(obs, batch_start);
            return values;
        }
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.extend(requests.iter().enumerate().map(|(index, r)| Job {
                index,
                config: r.config.clone(),
                enqueued: batch_start.map(|_| Instant::now()),
            }));
        }
        if let Some(obs) = obs {
            obs.queue_depth.set(requests.len() as i64);
        }
        self.shared.available.notify_all();
        let mut slots: Vec<Option<std::thread::Result<Result<f64, EvalError>>>> =
            (0..requests.len()).map(|_| None).collect();
        for _ in 0..requests.len() {
            let (index, result) = self
                .results
                .recv()
                .expect("a pool worker died while the batch was in flight");
            slots[index] = Some(result);
        }
        if let Some(obs) = obs {
            obs.queue_depth.set(0);
        }
        finish(obs, batch_start);
        // Deterministic failure selection: scanning in request order, the
        // lowest-indexed failure wins no matter which worker hit it first
        // — an error returns, a caught panic re-raises with its original
        // payload (matching the serial stack, which would have panicked at
        // that request and never reached the later ones).
        let mut values = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.expect("every index was reported once") {
                Ok(Ok(value)) => values.push(value),
                Ok(Err(error)) => return Err(error),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        Ok(values)
    }

    fn fulfill_one(&mut self, config: &Config) -> Result<f64, EvalError> {
        self.shared.compute(&mut *self.local, config)
    }

    fn num_variables(&self) -> usize {
        self.num_variables
    }

    fn evaluations(&self) -> u64 {
        self.shared.evaluations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    use krigeval_core::FnEvaluator;

    fn requests(configs: &[Vec<i32>]) -> Vec<SimulationRequest> {
        configs
            .iter()
            .map(|c| SimulationRequest::new(c.clone()))
            .collect()
    }

    fn factory() -> impl Fn() -> Box<dyn AccuracyEvaluator + Send> {
        || {
            Box::new(FnEvaluator::new(2, |w: &Config| {
                Ok(f64::from(w[0] * 10 + w[1]))
            }))
        }
    }

    #[test]
    fn values_match_inline_evaluation_at_any_worker_count() {
        let configs: Vec<Config> = (0..25).map(|i| vec![i / 5, i % 5]).collect();
        let expected: Vec<f64> = configs
            .iter()
            .map(|w| f64::from(w[0] * 10 + w[1]))
            .collect();
        for workers in [1, 2, 4, 8] {
            let mut backend =
                EngineBackend::new(factory(), workers, Arc::new(SimCache::new()), "t");
            assert_eq!(backend.fulfill(&requests(&configs)).unwrap(), expected);
        }
    }

    #[test]
    fn pool_is_reused_across_batches() {
        let mut backend = EngineBackend::new(factory(), 4, Arc::new(SimCache::new()), "t");
        for round in 0..10 {
            let configs: Vec<Config> = (0..5).map(|i| vec![round, i]).collect();
            let expected: Vec<f64> = configs
                .iter()
                .map(|w| f64::from(w[0] * 10 + w[1]))
                .collect();
            assert_eq!(backend.fulfill(&requests(&configs)).unwrap(), expected);
        }
        assert_eq!(backend.evaluations(), 50);
    }

    #[test]
    fn shared_cache_spares_the_second_backend_all_simulations() {
        let cache = Arc::new(SimCache::new());
        let configs: Vec<Config> = (0..8).map(|i| vec![i, i]).collect();
        let mut first = EngineBackend::new(factory(), 2, Arc::clone(&cache), "shared");
        let a = first.fulfill(&requests(&configs)).unwrap();
        let mut second = EngineBackend::new(factory(), 2, Arc::clone(&cache), "shared");
        let b = second.fulfill(&requests(&configs)).unwrap();
        assert_eq!(a, b);
        assert_eq!(second.evaluations(), 0, "everything came from the cache");
        assert_eq!(first.evaluations(), 8);
    }

    #[test]
    fn lowest_indexed_failure_is_reported() {
        let flaky = || -> Box<dyn AccuracyEvaluator + Send> {
            Box::new(FnEvaluator::new(1, |w: &Config| {
                if w[0] % 3 == 0 {
                    Err(EvalError::msg(format!("bad config {}", w[0])))
                } else {
                    Ok(f64::from(w[0]))
                }
            }))
        };
        let configs: Vec<Config> = (1..20).map(|i| vec![i]).collect(); // fails at 3, 6, 9, …
        for workers in [1, 4] {
            let mut backend = EngineBackend::new(flaky, workers, Arc::new(SimCache::new()), "t");
            let err = backend.fulfill(&requests(&configs)).unwrap_err();
            assert!(err.to_string().contains("bad config 3"), "{err}");
        }
    }

    #[test]
    fn transient_failures_are_retried() {
        let failures = Arc::new(AtomicU64::new(2));
        let counter = Arc::clone(&failures);
        let flaky = move || -> Box<dyn AccuracyEvaluator + Send> {
            let counter = Arc::clone(&counter);
            Box::new(FnEvaluator::new(1, move |w: &Config| {
                if counter
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err(EvalError::msg("transient"))
                } else {
                    Ok(f64::from(w[0]))
                }
            }))
        };
        let mut backend =
            EngineBackend::new(flaky, 1, Arc::new(SimCache::new()), "t").with_max_retries(3);
        assert_eq!(backend.fulfill_one(&vec![7]).unwrap(), 7.0);

        failures.store(10, Ordering::SeqCst);
        let mut strict = EngineBackend::new(
            {
                let counter = Arc::clone(&failures);
                move || -> Box<dyn AccuracyEvaluator + Send> {
                    let counter = Arc::clone(&counter);
                    Box::new(FnEvaluator::new(1, move |w: &Config| {
                        if counter
                            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                            .is_ok()
                        {
                            Err(EvalError::msg("transient"))
                        } else {
                            Ok(f64::from(w[0]))
                        }
                    }))
                }
            },
            1,
            Arc::new(SimCache::new()),
            "t",
        );
        assert!(
            strict.fulfill_one(&vec![7]).is_err(),
            "no retries by default"
        );
    }

    #[test]
    fn injected_failures_are_identical_at_any_worker_count() {
        use crate::fault::{FaultConfig, FaultPhase};
        let config = FaultConfig {
            panic_rate: 0.0,
            error_rate: 0.25,
            nan_rate: 0.25,
            seed: 21,
        };
        let stream = || Some(FaultStream::new(config, "t/fast/0", 0, FaultPhase::Hybrid));
        let configs: Vec<Config> = (0..40).map(|i| vec![i / 5, i % 5]).collect();
        let outcome = |workers: usize| -> Vec<Result<f64, String>> {
            let mut backend =
                EngineBackend::new(factory(), workers, Arc::new(SimCache::new()), "t")
                    .with_faults(stream());
            configs
                .iter()
                .map(|c| backend.fulfill_one(c).map_err(|e| e.to_string()))
                .collect()
        };
        let serial = outcome(1);
        assert_eq!(serial, outcome(4), "worker count changed injected fates");
        assert!(serial.iter().any(Result::is_err), "faults were injected");
        assert!(serial.iter().any(Result::is_ok), "real calls got through");
        // Batch fulfillment reports the lowest-indexed injected failure.
        let first_err = serial.iter().position(|r| r.is_err()).unwrap();
        for workers in [1, 4] {
            let mut backend =
                EngineBackend::new(factory(), workers, Arc::new(SimCache::new()), "t")
                    .with_faults(stream());
            let err = backend.fulfill(&requests(&configs)).unwrap_err();
            assert_eq!(
                err.to_string(),
                *serial[first_err].as_ref().unwrap_err(),
                "workers={workers}"
            );
        }
    }

    /// Silences the default panic hook for injected panics only (they are
    /// expected and caught); everything else still reports.
    fn silence_injected_panics() {
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.starts_with("injected panic"));
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn injected_panics_are_contained_and_rethrown_with_their_payload() {
        use crate::fault::{FaultConfig, FaultPhase};
        silence_injected_panics();
        let config = FaultConfig {
            panic_rate: 1.0,
            error_rate: 0.0,
            nan_rate: 0.0,
            seed: 3,
        };
        let stream = FaultStream::new(config, "t/fast/0", 1, FaultPhase::Pilot);
        let expected = stream.panic_message(&vec![0, 0]);
        let configs: Vec<Config> = (0..8).map(|i| vec![i / 4, i % 4]).collect();
        let mut backend = EngineBackend::new(factory(), 4, Arc::new(SimCache::new()), "t")
            .with_faults(Some(stream));
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = backend.fulfill(&requests(&configs));
        }))
        .unwrap_err();
        assert_eq!(payload.downcast_ref::<String>().unwrap(), &expected);
        // The pool survived the panic: a fault-free-looking config (none
        // exists at rate 1.0, so check the workers themselves) can still
        // serve a later batch after the stream is exhausted of real
        // fates — fulfill again and observe the same deterministic panic
        // rather than a dead-worker recv failure.
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = backend.fulfill(&requests(&configs));
        }))
        .unwrap_err();
        assert_eq!(payload.downcast_ref::<String>().unwrap(), &expected);
    }

    #[test]
    fn debug_shows_shape_not_contents() {
        let backend = EngineBackend::new(factory(), 3, Arc::new(SimCache::new()), "ns");
        let s = format!("{backend:?}");
        assert!(s.contains("workers: 3") && s.contains("\"ns\""), "{s}");
    }
}
