//! Measures the decision divergence between the pure-simulation and the
//! kriging-assisted optimizer runs (§IV prose: ≈10 %).
//!
//! ```text
//! decisions [--scale fast|paper] [--d 3] [--workers 4]
//! ```
//!
//! The per-benchmark studies are independent, so each section fans out
//! over the benchmarks on the engine's worker pool (`parallel_map`); the
//! lockstep logic itself stays sequential per benchmark, as the paper's
//! protocol requires.

use std::process::ExitCode;

use krigeval_bench::decisions::{
    run, run_lockstep, run_lockstep_with_tie_break, DivergenceReport, LockstepReport,
};
use krigeval_bench::suite::Problem;
use krigeval_bench::Scale;
use krigeval_core::opt::OptError;
use krigeval_engine::parallel_map;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut d = 3.0f64;
    let mut workers = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = if args[i] == "fast" {
                    Scale::Fast
                } else {
                    Scale::Paper
                };
            }
            "--d" => {
                i += 1;
                d = args[i].parse().unwrap_or(3.0);
            }
            "--workers" => {
                i += 1;
                workers = args[i].parse().unwrap_or(4);
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let problems = Problem::all();

    println!("=== independent runs (positional divergence cascades) ===");
    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>14} {:>8}",
        "benchmark", "divergence", "|Δw|₁", "λ (sim)", "λ (hybrid)", "p"
    );
    let independent: Vec<Result<DivergenceReport, OptError>> =
        parallel_map(&problems, workers, |&problem| run(problem, scale, d));
    for (problem, outcome) in problems.iter().zip(independent) {
        match outcome {
            Ok(r) => println!(
                "{:<12} {:>11.1}% {:>10.0} {:>12.3} {:>14.3} {:>7.1}%",
                problem.label(),
                r.decision_divergence * 100.0,
                r.solution_distance,
                r.lambda_sim,
                r.lambda_hybrid,
                r.interpolated_fraction * 100.0,
            ),
            Err(e) => {
                eprintln!("{}: {e}", problem.label());
                return ExitCode::FAILURE;
            }
        }
    }

    println!("\n=== lockstep (per-decision disagreement — the paper's ~10 %) ===");
    println!("(literal = any index difference, dominated by ties between");
    println!(" isometric candidates kriging provably cannot rank;");
    println!(" material = kriging's pick truly worse by > 0.5 dB / 0.02)");
    println!(
        "{:<12} {:>10} {:>9} {:>10} {:>8}",
        "benchmark", "decisions", "literal", "material", "p"
    );
    let lockstep: Vec<Result<LockstepReport, OptError>> =
        parallel_map(&problems, workers, |&problem| {
            run_lockstep(problem, scale, d)
        });
    if print_lockstep(&problems, lockstep).is_err() {
        return ExitCode::FAILURE;
    }

    println!("\n=== lockstep with tie-break-by-simulation (tol 0.5 dB / 0.02) ===");
    println!(
        "{:<12} {:>10} {:>9} {:>10} {:>8}",
        "benchmark", "decisions", "literal", "material", "p"
    );
    let tie_break: Vec<Result<LockstepReport, OptError>> =
        parallel_map(&problems, workers, |&problem| {
            let tol = if problem.metric_label() == "class. rate" {
                0.02
            } else {
                0.5
            };
            run_lockstep_with_tie_break(problem, scale, d, tol)
        });
    if print_lockstep(&problems, tie_break).is_err() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_lockstep(
    problems: &[Problem],
    outcomes: Vec<Result<LockstepReport, OptError>>,
) -> Result<(), ()> {
    for (problem, outcome) in problems.iter().zip(outcomes) {
        match outcome {
            Ok(r) => println!(
                "{:<12} {:>10} {:>8.1}% {:>9.1}% {:>7.1}%",
                problem.label(),
                r.decisions,
                r.divergence() * 100.0,
                r.material_divergence() * 100.0,
                r.interpolated_fraction * 100.0,
            ),
            Err(e) => {
                eprintln!("{}: {e}", problem.label());
                return Err(());
            }
        }
    }
    Ok(())
}
