//! Ablations: the paper's `N_n,min = 2` experiment plus two of our own
//! (distance metric, variogram family).
//!
//! ```text
//! ablation [--scale fast|paper] [--sweep nmin|metric|variogram]
//!          [--bench fir|iir|fft|hevc|squeezenet] [--workers 4]
//! ```
//!
//! Each sweep is expressed as a `krigeval-engine` campaign and executed on
//! a worker pool; cells that share a benchmark surface also share
//! simulations through the engine's memo-cache.

use std::process::ExitCode;

use krigeval_bench::suite::Problem;
use krigeval_bench::table1::record_to_row;
use krigeval_bench::Scale;
use krigeval_core::report::Table;
use krigeval_core::VariogramModel;
use krigeval_engine::{run_campaign, run_specs, CampaignSpec, Progress, VariogramSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut sweep = String::from("nmin");
    let mut problem = Problem::Fft;
    let mut workers = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = if args[i] == "fast" {
                    Scale::Fast
                } else {
                    Scale::Paper
                };
            }
            "--sweep" => {
                i += 1;
                sweep = args[i].clone();
            }
            "--bench" => {
                i += 1;
                match Problem::parse(&args[i]) {
                    Some(p) => problem = p,
                    None => {
                        eprintln!("unknown benchmark: {}", args[i]);
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--workers" => {
                i += 1;
                workers = args[i].parse().unwrap_or(4);
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let result = match sweep.as_str() {
        "nmin" => sweep_nmin(problem, scale, workers),
        "metric" => sweep_metric(problem, scale, workers),
        "variogram" => sweep_variogram(problem, scale, workers),
        other => {
            eprintln!("unknown sweep: {other} (expected nmin|metric|variogram)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ablation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn base_spec(problem: Problem, scale: Scale, name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        benchmarks: vec![problem.label().to_string()],
        scale: scale.label().to_string(),
        distances: vec![3.0],
        ..CampaignSpec::default()
    }
}

/// The paper's closing ablation: `N_n,min ∈ {2, 3, 4}` at d = 3 — one
/// campaign with a `min_neighbors` axis.
fn sweep_nmin(
    problem: Problem,
    scale: Scale,
    workers: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let spec = CampaignSpec {
        min_neighbors: vec![2, 3, 4],
        ..base_spec(problem, scale, "ablation-nmin")
    };
    let outcome = run_campaign(&spec, workers, Progress::Silent)?;
    let mut table = Table::new();
    for record in &outcome.records {
        let mut row = record_to_row(record);
        row.metric = format!("nmin={}", record.min_neighbors);
        table.push(row);
    }
    print!("{table}");
    Ok(())
}

/// Our ablation: the L1/L2/L∞ configuration distances. Three one-cell
/// campaigns merged into a single parallel batch (the engine's online
/// fit-after policy matches the sequential ablation's default settings).
fn sweep_metric(
    problem: Problem,
    scale: Scale,
    workers: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut runs = Vec::new();
    for metric in ["l1", "l2", "linf"] {
        let spec = CampaignSpec {
            metric: metric.to_string(),
            variogram: VariogramSpec::FitAfter { min_samples: 10 },
            ..base_spec(problem, scale, "ablation-metric")
        };
        for mut run in spec.expand()? {
            run.index = runs.len() as u64;
            runs.push(run);
        }
    }
    let labels = ["L1", "L2", "Linf"];
    let outcome = run_specs(runs, workers, Progress::Silent)?;
    let mut table = Table::new();
    for (record, label) in outcome.records.iter().zip(labels) {
        let mut row = record_to_row(record);
        row.metric = label.to_string();
        table.push(row);
    }
    print!("{table}");
    Ok(())
}

/// Our ablation: fixed variogram families instead of automatic fitting.
fn sweep_variogram(
    problem: Problem,
    scale: Scale,
    workers: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let policies: Vec<(&str, VariogramSpec)> = vec![
        ("auto", VariogramSpec::FitAfter { min_samples: 10 }),
        ("linear", VariogramSpec::FixedLinear { slope: 3.0 }),
        (
            "spherical",
            VariogramSpec::Fixed {
                model: VariogramModel::spherical(0.0, 100.0, 8.0)?,
            },
        ),
        (
            "exponential",
            VariogramSpec::Fixed {
                model: VariogramModel::exponential(0.0, 100.0, 8.0)?,
            },
        ),
        (
            "gaussian",
            VariogramSpec::Fixed {
                model: VariogramModel::gaussian(0.0, 100.0, 8.0)?,
            },
        ),
    ];
    let mut runs = Vec::new();
    let mut labels = Vec::new();
    for (name, variogram) in policies {
        let spec = CampaignSpec {
            variogram,
            ..base_spec(problem, scale, "ablation-variogram")
        };
        for mut run in spec.expand()? {
            run.index = runs.len() as u64;
            runs.push(run);
            labels.push(name);
        }
    }
    let outcome = run_specs(runs, workers, Progress::Silent)?;
    let mut table = Table::new();
    for (record, name) in outcome.records.iter().zip(labels) {
        let mut row = record_to_row(record);
        row.metric = name.to_string();
        table.push(row);
    }
    print!("{table}");
    Ok(())
}
