//! Ablations: the paper's `N_n,min = 2` experiment plus two of our own
//! (distance metric, variogram family).
//!
//! ```text
//! ablation [--scale fast|paper] [--sweep nmin|metric|variogram]
//!          [--bench fir|iir|fft|hevc|squeezenet]
//! ```

use std::process::ExitCode;

use krigeval_bench::suite::{build, Problem};
use krigeval_bench::table1::run_row;
use krigeval_bench::Scale;
use krigeval_core::hybrid::{HybridEvaluator, HybridSettings, VariogramPolicy};
use krigeval_core::opt::minplusone::optimize;
use krigeval_core::report::{Table, TableRow};
use krigeval_core::variogram::ModelFamily;
use krigeval_core::{DistanceMetric, VariogramModel};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut sweep = String::from("nmin");
    let mut problem = Problem::Fft;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = if args[i] == "fast" { Scale::Fast } else { Scale::Paper };
            }
            "--sweep" => {
                i += 1;
                sweep = args[i].clone();
            }
            "--bench" => {
                i += 1;
                match Problem::parse(&args[i]) {
                    Some(p) => problem = p,
                    None => {
                        eprintln!("unknown benchmark: {}", args[i]);
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let result = match sweep.as_str() {
        "nmin" => sweep_nmin(problem, scale),
        "metric" => sweep_metric(problem, scale),
        "variogram" => sweep_variogram(problem, scale),
        other => {
            eprintln!("unknown sweep: {other} (expected nmin|metric|variogram)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ablation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The paper's closing ablation: `N_n,min ∈ {2, 3, 4}` at d = 3.
fn sweep_nmin(problem: Problem, scale: Scale) -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new();
    for nmin in [2usize, 3, 4] {
        let mut row = run_row(problem, scale, 3.0, nmin)?;
        row.metric = format!("nmin={nmin}");
        table.push(row);
    }
    print!("{table}");
    Ok(())
}

/// Our ablation: the L1/L2/L∞ configuration distances.
fn sweep_metric(problem: Problem, scale: Scale) -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new();
    for metric in [DistanceMetric::L1, DistanceMetric::L2, DistanceMetric::Linf] {
        let instance = build(problem, scale);
        let Some(opts) = instance.minplusone else {
            return Err("metric sweep requires a word-length benchmark".into());
        };
        let settings = HybridSettings {
            distance: 3.0,
            metric,
            audit: Some(problem.audit_metric()),
            ..HybridSettings::default()
        };
        let mut hybrid = HybridEvaluator::new(instance.evaluator, settings);
        optimize(&mut hybrid, &opts)?;
        let mut row = TableRow::from_stats(
            problem.label(),
            format!("{metric}"),
            problem.nv(),
            3.0,
            hybrid.stats(),
        );
        row.metric = format!("{metric}");
        table.push(row);
    }
    print!("{table}");
    Ok(())
}

/// Our ablation: fixed variogram families instead of automatic fitting.
fn sweep_variogram(problem: Problem, scale: Scale) -> Result<(), Box<dyn std::error::Error>> {
    let families: Vec<(&str, VariogramPolicy)> = vec![
        (
            "auto",
            VariogramPolicy::FitAfter {
                min_samples: 10,
                families: ModelFamily::all().to_vec(),
                fallback: VariogramModel::linear(1.0),
            },
        ),
        ("linear", VariogramPolicy::Fixed(VariogramModel::linear(3.0))),
        (
            "spherical",
            VariogramPolicy::Fixed(VariogramModel::spherical(0.0, 100.0, 8.0)?),
        ),
        (
            "exponential",
            VariogramPolicy::Fixed(VariogramModel::exponential(0.0, 100.0, 8.0)?),
        ),
        (
            "gaussian",
            VariogramPolicy::Fixed(VariogramModel::gaussian(0.0, 100.0, 8.0)?),
        ),
    ];
    let mut table = Table::new();
    for (name, policy) in families {
        let instance = build(problem, scale);
        let Some(opts) = instance.minplusone else {
            return Err("variogram sweep requires a word-length benchmark".into());
        };
        let settings = HybridSettings {
            distance: 3.0,
            variogram: policy,
            audit: Some(problem.audit_metric()),
            ..HybridSettings::default()
        };
        let mut hybrid = HybridEvaluator::new(instance.evaluator, settings);
        optimize(&mut hybrid, &opts)?;
        let mut row = TableRow::from_stats(
            problem.label(),
            name,
            problem.nv(),
            3.0,
            hybrid.stats(),
        );
        row.metric = name.to_string();
        table.push(row);
    }
    print!("{table}");
    Ok(())
}
