//! Reproduces the paper's Table I.
//!
//! ```text
//! table1 [--bench fir,iir,fft,hevc,squeezenet|all] [--scale fast|paper]
//!        [--d 2,3,4,5] [--nmin 3] [--workers 4] [--json PATH]
//! ```
//!
//! Cells are executed by the `krigeval-engine` campaign executor: the
//! grid runs on a worker pool and all cells of one benchmark share pilot
//! simulations through the engine's memo-cache. `--workers 1` falls back
//! to a single worker and produces identical rows.

use std::process::ExitCode;

use krigeval_bench::suite::Problem;
use krigeval_bench::table1::run_table_parallel;
use krigeval_bench::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut problems: Vec<Problem> = Problem::all().to_vec();
    let mut scale = Scale::Paper;
    let mut distances = vec![2.0, 3.0, 4.0, 5.0];
    let mut min_neighbors = 3usize;
    let mut workers = 4usize;
    let mut json_path: Option<String> = None;
    let mut fir_grid = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                let v = &args[i];
                if v == "all" {
                    problems = Problem::all().to_vec();
                } else {
                    problems = Vec::new();
                    for name in v.split(',') {
                        match Problem::parse(name) {
                            Some(p) => problems.push(p),
                            None => {
                                eprintln!("unknown benchmark: {name}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
            }
            "--scale" => {
                i += 1;
                scale = match args[i].as_str() {
                    "fast" => Scale::Fast,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("unknown scale: {other}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--d" => {
                i += 1;
                distances = args[i].split(',').filter_map(|s| s.parse().ok()).collect();
            }
            "--nmin" => {
                i += 1;
                min_neighbors = args[i].parse().unwrap_or(3);
            }
            "--workers" => {
                i += 1;
                workers = args[i].parse().unwrap_or(4);
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--fir-grid" => {
                fir_grid = true;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    eprintln!(
        "running Table I: {} benchmark(s), d = {distances:?}, N_n,min = {min_neighbors}, {scale:?} scale, {workers} worker(s)",
        problems.len()
    );
    match run_table_parallel(&problems, scale, &distances, min_neighbors, workers) {
        Ok(mut table) => {
            if fir_grid {
                for &d in &distances {
                    match krigeval_bench::table1::fir_surface_replay(scale, d, min_neighbors) {
                        Ok(row) => table.push(row),
                        Err(e) => {
                            eprintln!("fir grid replay failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            let table = table;
            print!("{table}");
            if let Some(path) = json_path {
                if let Err(e) = std::fs::write(&path, table.to_json()) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("table generation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
