//! Measures per-evaluation simulation vs kriging times and the projected
//! refinement speed-ups (§IV prose claims).
//!
//! ```text
//! timing [--scale fast|paper] [--reps N]
//! ```

use std::process::ExitCode;

use krigeval_bench::suite::Problem;
use krigeval_bench::timing::measure;
use krigeval_bench::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut reps = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = if args[i] == "fast" {
                    Scale::Fast
                } else {
                    Scale::Paper
                };
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().unwrap_or(10);
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>11} {:>11}",
        "benchmark", "t_sim (s)", "t_krige (s)", "speedup", "proj p=0.8", "proj p=0.9"
    );
    for problem in Problem::all() {
        match measure(problem, scale, reps, 4) {
            Ok(row) => println!(
                "{:<12} {:>12.6} {:>12.9} {:>10.0} {:>11.2} {:>11.2}",
                problem.label(),
                row.t_sim,
                row.t_krige,
                row.per_eval_speedup(),
                row.projected_speedup(0.8),
                row.projected_speedup(0.9),
            ),
            Err(e) => {
                eprintln!("{}: {e}", problem.label());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
