//! Perf smoke: re-measures the kriging hot paths with plain `Instant`
//! loops and writes `BENCH_kriging.json` (repo root) with before/after
//! numbers, so the optimization work stays pinned to a tracked baseline.
//!
//! ```text
//! perfsmoke [--out PATH] [--skip-table1] [--workers N]
//! ```
//!
//! "Before" values are frozen measurements from the pre-overhaul commit
//! (one-shot dense-LU solves, batch variogram rebuilds, allocating query
//! path) taken on the same container; "after" is measured live. CI runs
//! this with `--skip-table1` as a cheap regression smoke; the committed
//! JSON includes the Table I fast-scale wall time as well.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use krigeval_bench::suite::{build_seeded, Problem};
use krigeval_bench::table1::run_table_parallel;
use krigeval_bench::Scale;
use krigeval_core::kriging::KrigingEstimator;
use krigeval_core::opt::minplusone::optimize;
use krigeval_core::variogram::{ModelFamily, VariogramAccumulator};
use krigeval_core::{
    Config, DistanceMetric, EvalError, FnEvaluator, HybridEvaluator, HybridObs, HybridSettings,
    VariogramModel, VariogramPolicy,
};
use krigeval_engine::matrix::{check_table_shape, summarize, MatrixSpec};
use krigeval_engine::shard::{merge_shards, parse_shard, render_shard, shard_runs, ShardManifest};
use krigeval_engine::sink::to_jsonl_string_full;
use krigeval_engine::spec::GatePolicy;
use krigeval_engine::{
    run_specs_opts, CampaignSpec, EngineBackend, ExecOptions, FaultConfig, FaultPolicy, Progress,
    RunRecord, SimCache, SinkOptions,
};
use krigeval_obs::{Registry, Tracer};
use krigeval_serve::protocol::{HelloParams, Request, Response};
use krigeval_serve::server::{Server, ServerConfig};
use serde_json::{Number, Value};

/// Frozen pre-overhaul medians (µs unless noted), measured with the same
/// loops at the last commit before the hot-path rewrite.
mod baseline {
    /// `KrigingEstimator::predict_config`, 16 sites, 10-D.
    pub const KRIGING_SOLVE_N16_US: f64 = 12.575;
    /// Same, 32 sites.
    pub const KRIGING_SOLVE_N32_US: f64 = 60.9;
    /// Variogram refit = full `from_configs` rebuild over 60 sites (the
    /// only refit path that existed).
    pub const VARIOGRAM_REFIT_US: f64 = 81.078;
    /// `KrigingEstimator::predict` over 24 f64 sites.
    pub const ONESHOT_PREDICT_24_US: f64 = 31.165;
    /// Per-query factored prediction (assemble + factor + solve per
    /// target), 24 sites, 10-D — measured on this container immediately
    /// before the multi-RHS batch path landed. The batch-of-24 metric is
    /// gated against this: factoring Γ once must at least halve the
    /// per-prediction cost.
    pub const PER_QUERY_PREDICT_24_US: f64 = 7.780;
    /// `table1 --scale fast --workers 4` wall clock (seconds).
    pub const TABLE1_FAST_WALL_S: f64 = 28.141;
}

/// The criterion bench's deterministic 10-D cloud, duplicated here so the
/// smoke numbers are comparable with `benches/kriging.rs`.
fn cloud(n: usize) -> (Vec<Config>, Vec<f64>) {
    let mut configs = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let config: Config = (0..10)
            .map(|k| 6 + (((i * (k + 3)).wrapping_mul(2654435761) >> 7) % 9) as i32)
            .collect();
        let value = config.iter().map(|&w| 6.0 * f64::from(w)).sum::<f64>() / 10.0;
        configs.push(config);
        values.push(value);
    }
    (configs, values)
}

/// Median of `batches` timed batches of `iters` calls, in µs per call.
fn measure_us(mut routine: impl FnMut(), iters: usize, batches: usize) -> f64 {
    for _ in 0..iters {
        routine(); // warm-up: fault in code and grow scratch buffers
    }
    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        samples.push(start.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Interleaved variant of [`measure_us`] for ratio gates: timed batches
/// of `a` and `b` alternate, so clock-frequency and host-load drift hit
/// both sides equally and the two medians come out of the same
/// measurement window. Returns `(a_us, b_us)` per call.
fn measure_pair_us(
    mut a: impl FnMut(),
    mut b: impl FnMut(),
    iters: usize,
    batches: usize,
) -> (f64, f64) {
    for _ in 0..iters {
        a();
        b();
    }
    let mut a_samples = Vec::with_capacity(batches);
    let mut b_samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            a();
        }
        a_samples.push(start.elapsed().as_secs_f64() * 1e6 / iters as f64);
        let start = Instant::now();
        for _ in 0..iters {
            b();
        }
        b_samples.push(start.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    a_samples.sort_unstable_by(f64::total_cmp);
    b_samples.sort_unstable_by(f64::total_cmp);
    (a_samples[batches / 2], b_samples[batches / 2])
}

fn num(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn metric(before: Option<f64>, after: f64) -> Value {
    match before {
        Some(b) => obj(vec![
            ("before", num(b)),
            ("after", num(after)),
            ("speedup", num(b / after)),
        ]),
        None => obj(vec![("before", Value::Null), ("after", num(after))]),
    }
}

fn kriging_solve_us(n: usize) -> f64 {
    let (configs, values) = cloud(n);
    let estimator = KrigingEstimator::new(VariogramModel::linear(2.0));
    let target = vec![9; 10];
    measure_us(
        || {
            let p = estimator
                .predict_config(&configs, &values, &target)
                .expect("solvable system");
            std::hint::black_box(p.value);
        },
        2048,
        15,
    )
}

fn oneshot_predict_24_us() -> f64 {
    let (configs, values) = cloud(24);
    let sites: Vec<Vec<f64>> = configs
        .iter()
        .map(|cfg| cfg.iter().map(|&x| f64::from(x)).collect())
        .collect();
    let estimator = KrigingEstimator::new(VariogramModel::linear(2.0));
    let target: Vec<f64> = vec![9.0; 10];
    measure_us(
        || {
            let p = estimator
                .predict(&sites, &values, &target)
                .expect("solvable system");
            std::hint::black_box(p.value);
        },
        2048,
        15,
    )
}

/// Batch-of-24 shared-neighbour predictions through the factored path:
/// one Γ assembly + one Bunch–Kaufman factorization + one blocked 24-RHS
/// solve, reported as µs **per prediction** so it is directly comparable
/// with the frozen per-query number (which re-assembles and re-factors
/// for every target).
///
/// Measured in two interleaved flavours and returned as
/// `(value_only, with_variance)`: the second additionally reads every
/// prediction's kriging variance σ² out of the batch — exactly what the
/// variance gate consumes per decision. σ² is a byproduct of the same
/// bordered solve that produces the weights, so surfacing it must be
/// (near) free: the with-variance number is gated at ≤1.05x the
/// value-only number.
fn multi_rhs_predict_us() -> (f64, f64) {
    use krigeval_core::kriging::FactoredKriging;
    let (configs, values) = cloud(24);
    let dim = 10usize;
    let mut flat_sites = Vec::with_capacity(24 * dim);
    for cfg in &configs {
        flat_sites.extend(cfg.iter().map(|&x| f64::from(x)));
    }
    // 24 distinct targets interleaved through the cloud's bounding box.
    let mut targets = Vec::with_capacity(24 * dim);
    for t in 0..24 {
        for k in 0..dim {
            targets.push(6.5 + ((t + k) % 9) as f64 * 0.5);
        }
    }
    let model = VariogramModel::linear(2.0);
    let factor = |flat_sites: &Vec<f64>, values: &Vec<f64>| {
        FactoredKriging::from_flat(
            model,
            DistanceMetric::L1,
            flat_sites.clone(),
            dim,
            values.clone(),
        )
        .expect("solvable system")
    };
    let (value_only, with_variance) = measure_pair_us(
        || {
            let fk = factor(&flat_sites, &values);
            let many = fk.predict_many(&targets, dim).expect("valid slab");
            std::hint::black_box(many.len());
        },
        || {
            let fk = factor(&flat_sites, &values);
            let many = fk.predict_many(&targets, dim).expect("valid slab");
            let sigma2: f64 = many.iter().map(|p| p.variance).sum();
            std::hint::black_box(sigma2);
        },
        256,
        15,
    );
    (value_only / 24.0, with_variance / 24.0)
}

/// Screened (n=16) vs exact (n=64) solve cost on one 64-site system —
/// the per-query saving the opt-in approximate path buys when its
/// leave-one-out validation accepts. Returns `(exact_us, screened_us)`.
fn approx_predict_n64_us() -> (f64, f64) {
    let (configs, values) = cloud(64);
    let estimator = KrigingEstimator::new(VariogramModel::linear(2.0));
    let target = vec![9; 10];
    let exact = measure_us(
        || {
            let p = estimator
                .predict_config(&configs, &values, &target)
                .expect("solvable system");
            std::hint::black_box(p.value);
        },
        512,
        15,
    );
    let screened = measure_us(
        || {
            let p = estimator
                .predict_config(&configs[..16], &values[..16], &target)
                .expect("solvable system");
            std::hint::black_box(p.value);
        },
        512,
        15,
    );
    (exact, screened)
}

fn variogram_refit_us() -> f64 {
    // Refit after 5 new simulations on top of 60: the accumulator folds
    // only the new pairs. Compared against the frozen cost of the full
    // rebuild the old path performed on every refit.
    let (configs, values) = cloud(65);
    let mut warm = VariogramAccumulator::new(DistanceMetric::L1);
    warm.sync(&configs[..60], &values[..60]);
    measure_us(
        || {
            let mut acc = warm.clone();
            acc.sync(&configs, &values);
            let v = acc.snapshot().expect("non-degenerate");
            std::hint::black_box(v.total_pairs());
        },
        1024,
        15,
    )
}

/// The steady-state session's metric, as a nameable `fn` so base and
/// obs-attached sessions share one concrete evaluator type.
fn steady_metric(w: &Config) -> Result<f64, EvalError> {
    let p = 1.5 * 2f64.powi(-2 * w[0]) + 0.8 * 2f64.powi(-2 * w[1]);
    Ok(-10.0 * p.log10())
}

type SteadyEval = FnEvaluator<fn(&Config) -> Result<f64, EvalError>>;

/// A hybrid session seeded into its kriging steady state: variogram
/// identified, every further probe evaluation kriged.
fn steady_session() -> HybridEvaluator<SteadyEval> {
    let eval = FnEvaluator::new(2, steady_metric as fn(&Config) -> Result<f64, EvalError>);
    let settings = HybridSettings {
        variogram: VariogramPolicy::FitAfter {
            min_samples: 30,
            families: ModelFamily::all().to_vec(),
            fallback: VariogramModel::linear(1.0),
        },
        ..HybridSettings::default()
    };
    let mut hybrid = HybridEvaluator::new(eval, settings);
    for a in 4..10 {
        for b in 4..9 {
            hybrid.evaluate(&vec![a, b]).expect("seed simulation");
        }
    }
    assert!(hybrid.model().is_some(), "variogram must be identified");
    hybrid
}

fn hybrid_steady_state_us() -> f64 {
    let mut hybrid = steady_session();
    let probe: Config = vec![10, 6];
    measure_us(
        || {
            let out = hybrid.evaluate(&probe).expect("kriged evaluate");
            std::hint::black_box(out.value());
        },
        4096,
        15,
    )
}

/// Observability overhead on the kriged hot path: two identical
/// steady-state sessions, one with a full metrics bundle attached
/// (registry counters plus a disabled tracer — the configuration every
/// `--metrics-out` campaign runs with). Batches are interleaved so
/// frequency drift hits both sides equally; returns the
/// `(base, with_obs)` medians in µs per evaluate.
fn hybrid_obs_overhead_us() -> (f64, f64) {
    const ITERS: usize = 4096;
    const BATCHES: usize = 15;
    let registry = Registry::new();
    let mut base = steady_session();
    let mut with_obs = steady_session();
    with_obs.set_obs(Some(HybridObs::new(&registry, Tracer::disabled())));
    let probe: Config = vec![10, 6];
    let run = |hybrid: &mut HybridEvaluator<SteadyEval>| {
        let start = Instant::now();
        for _ in 0..ITERS {
            let out = hybrid.evaluate(&probe).expect("kriged evaluate");
            std::hint::black_box(out.value());
        }
        start.elapsed().as_secs_f64() * 1e6 / ITERS as f64
    };
    for _ in 0..ITERS {
        base.evaluate(&probe).expect("kriged evaluate");
        with_obs.evaluate(&probe).expect("kriged evaluate");
    }
    let mut base_samples = Vec::with_capacity(BATCHES);
    let mut obs_samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        base_samples.push(run(&mut base));
        obs_samples.push(run(&mut with_obs));
    }
    base_samples.sort_unstable_by(f64::total_cmp);
    obs_samples.sort_unstable_by(f64::total_cmp);
    (base_samples[BATCHES / 2], obs_samples[BATCHES / 2])
}

/// End-to-end min+1 on the paper-scale IIR-8 instance through the hybrid
/// evaluator. `workers = None` drives the inline backend (the evaluator
/// itself); `Some(n)` drives the engine backend's worker pool over a fresh
/// shared cache. Pool construction happens outside the timer — in a
/// campaign it amortizes over many runs, and what this measures is the
/// plan/fulfill fan-out cost. Median of 3 fresh sessions, milliseconds.
/// Wall-clock speedup at 4 workers requires 4 host cores; on fewer the
/// pool can only break even, so the enforced gate is the 1-worker
/// overhead bound and the JSON records `host_cores` alongside the
/// timings so the speedup number is interpretable.
fn minplusone_iir8_ms(workers: Option<usize>) -> f64 {
    let run = || {
        let instance = build_seeded(Problem::Iir, Scale::Paper, 0);
        let options = instance.minplusone.expect("iir is a word-length problem");
        let result = match workers {
            None => {
                let mut hybrid =
                    HybridEvaluator::new(instance.evaluator, HybridSettings::default());
                let start = Instant::now();
                let result = optimize(&mut hybrid, &options).expect("min+1 converges");
                (start.elapsed(), result)
            }
            Some(n) => {
                let backend = EngineBackend::new(
                    || build_seeded(Problem::Iir, Scale::Paper, 0).evaluator,
                    n,
                    Arc::new(SimCache::new()),
                    "perfsmoke",
                );
                let mut hybrid = HybridEvaluator::new(backend, HybridSettings::default());
                let start = Instant::now();
                let result = optimize(&mut hybrid, &options).expect("min+1 converges");
                (start.elapsed(), result)
            }
        };
        std::hint::black_box(result.1.lambda);
        result.0.as_secs_f64() * 1e3
    };
    let mut samples: Vec<f64> = (0..3).map(|_| run()).collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Wall-clock budget for one kriged-hit round trip against a local
/// `krigeval serve` instance: socket + frame codec + dispatch + kriging
/// solve. The solve alone is tens of µs, loopback TCP with `TCP_NODELAY`
/// adds tens more; 5 ms leaves an order-of-magnitude margin for a loaded
/// CI host while still catching an accidental sync sleep or per-request
/// allocation storm in the serve path.
const SERVER_RTT_BUDGET_US: f64 = 5_000.0;

/// Round-trip latency of a single kriged evaluate against an in-process
/// `krigeval-serve` server over real loopback TCP: median µs per
/// request/response frame pair on a warm session.
fn server_roundtrip_us() -> f64 {
    let server = Server::start(ServerConfig {
        threads: 1,
        max_inflight: 4,
        ..ServerConfig::default()
    })
    .expect("start server");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut roundtrip = |request: &Request| -> Response {
        let mut line = request.to_line();
        line.push('\n');
        writer.write_all(line.as_bytes()).expect("send frame");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv frame");
        Response::from_line(reply.trim()).expect("parse frame")
    };

    // Warm a session into its kriging steady state: identify the
    // variogram from a 30-point seed grid on the first two word-lengths,
    // then probe just outside it — close enough for neighbors, never
    // stored, so every timed request takes the kriged-hit path.
    let nv = match roundtrip(&Request::Hello(HelloParams {
        benchmark: "iir8".to_string(),
        variogram: Some("fit-after:30".to_string()),
        ..HelloParams::default()
    })) {
        Response::Session { nv, .. } => nv as usize,
        other => panic!("expected session frame, got {}", other.to_line()),
    };
    let seed_grid: Vec<Vec<i32>> = (4..10)
        .flat_map(|a| {
            (4..9).map(move |b| {
                let mut config = vec![8; nv];
                config[0] = a;
                config[1] = b;
                config
            })
        })
        .collect();
    match roundtrip(&Request::EvaluateBatch { configs: seed_grid }) {
        Response::Values { outcomes } => assert_eq!(outcomes.len(), 30),
        other => panic!("expected values frame, got {}", other.to_line()),
    }
    let mut probe = vec![8; nv];
    probe[0] = 10;
    probe[1] = 6;
    let evaluate = Request::Evaluate {
        config: probe.clone(),
    };
    match roundtrip(&evaluate) {
        Response::Value(outcome) => assert_eq!(
            outcome.source, "kriged",
            "probe must take the kriged-hit path"
        ),
        other => panic!("expected value frame, got {}", other.to_line()),
    }

    let rtt = measure_us(
        || match roundtrip(&evaluate) {
            Response::Value(outcome) => {
                std::hint::black_box(outcome.value);
            }
            other => panic!("expected value frame, got {}", other.to_line()),
        },
        256,
        11,
    );
    drop(reader);
    drop(writer);
    server.join().expect("drain server");
    rtt
}

/// Wall time of the process-sharding round trip on a fast chaos
/// campaign: execute 3 shards (serially, in-process — what a CI matrix
/// does across jobs), then parse + merge the shard artifacts back into
/// the single-process JSONL. Returns `(shard_ms, merge_ms)`: total
/// execution wall for the three shards and the reassembly cost alone.
/// Transient faults (errors only, so the bench log stays quiet) are
/// active to keep the measured path the one CI exercises.
fn shard_merge_wall_ms() -> (f64, f64) {
    let spec = CampaignSpec {
        name: "perfshard".to_string(),
        benchmarks: vec!["fir".to_string()],
        distances: vec![2.0, 3.0, 4.0],
        repeats: 2,
        on_error: Some(FaultPolicy::Skip),
        faults: Some(FaultConfig {
            panic_rate: 0.0,
            error_rate: 0.002,
            nan_rate: 0.002,
            seed: 7,
        }),
        ..CampaignSpec::default()
    };
    let runs = spec.expand().expect("valid spec");
    let total = runs.len() as u64;

    let start = Instant::now();
    let mut artifacts = Vec::new();
    for index in 0..3u64 {
        let manifest = ShardManifest::new(&spec, index, 3, total);
        let outcome = run_specs_opts(
            shard_runs(runs.clone(), index, 3),
            ExecOptions {
                workers: 2,
                progress: Progress::Silent,
                policy: FaultPolicy::Skip,
                journal: None,
                journal_options: SinkOptions::default(),
                progress_out: None,
                obs: None,
            },
        )
        .expect("shard completes under skip");
        artifacts.push(render_shard(
            &manifest,
            &outcome.records,
            &outcome.failures,
            SinkOptions::default(),
        ));
    }
    let shard_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let shards: Vec<_> = artifacts
        .iter()
        .enumerate()
        .map(|(i, text)| parse_shard(format!("shard{i}.jsonl"), text).expect("shard parses"))
        .collect();
    let (records, failures) = merge_shards(&shards).expect("shards merge");
    std::hint::black_box(records.len() + failures.len());
    let merge_ms = start.elapsed().as_secs_f64() * 1e3;
    (shard_ms, merge_ms)
}

/// DEFLATE compression ratio and streaming throughput over a real
/// campaign artifact: the corpus is the finalized JSONL of a fast fir
/// chaos campaign, tiled to ~1 MiB so the window-scanning matcher sees
/// the long-range redundancy a multi-thousand-row journal has. Returns
/// `(ratio, encode_mib_s, decode_mib_s)` where ratio is
/// `compressed / plain` (smaller is better).
fn deflate_metrics() -> (f64, f64, f64) {
    let spec = CampaignSpec {
        name: "perfflate".to_string(),
        benchmarks: vec!["fir".to_string()],
        distances: vec![2.0, 3.0, 4.0],
        repeats: 2,
        ..CampaignSpec::default()
    };
    let outcome = run_specs_opts(
        spec.expand().expect("valid spec"),
        ExecOptions {
            workers: 2,
            progress: Progress::Silent,
            ..ExecOptions::default()
        },
    )
    .expect("corpus campaign completes");
    let summary = krigeval_engine::SummaryRecord::from_records(
        &spec.name,
        &outcome.records,
        &outcome.failures,
        krigeval_engine::CacheStats::default(),
        2,
        None,
    );
    let artifact = to_jsonl_string_full(
        &outcome.records,
        &outcome.failures,
        &[],
        &summary,
        SinkOptions::default(),
    );
    let mut corpus = String::new();
    while corpus.len() < 1 << 20 {
        corpus.push_str(&artifact);
    }
    let plain = corpus.as_bytes();
    let compressed = krigeval_flate::compress(plain);
    let ratio = compressed.len() as f64 / plain.len() as f64;
    let mib = plain.len() as f64 / (1024.0 * 1024.0);
    let encode_us = measure_us(
        || {
            let out = krigeval_flate::compress(plain);
            std::hint::black_box(out.len());
        },
        4,
        11,
    );
    let decode_us = measure_us(
        || {
            let out = krigeval_flate::inflate(&compressed).expect("own stream inflates");
            std::hint::black_box(out.len());
        },
        4,
        11,
    );
    (ratio, mib / (encode_us * 1e-6), mib / (decode_us * 1e-6))
}

/// Wall clock of the full eight-benchmark Table-I scenario matrix at
/// smoke scale through the engine backend — the same configuration the
/// CI matrix step runs — with the summary shape-checked so the number
/// only lands in the JSON when the matrix actually held its contract.
fn matrix_smoke_wall_s(workers: usize) -> f64 {
    let spec = MatrixSpec::smoke();
    let runs = spec.expand().expect("smoke matrix expands");
    let start = Instant::now();
    let outcome = run_specs_opts(
        runs,
        ExecOptions {
            workers,
            progress: Progress::Silent,
            ..ExecOptions::default()
        },
    )
    .expect("smoke matrix completes");
    let wall = start.elapsed().as_secs_f64();
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    let violations = check_table_shape(&summarize(&outcome.records));
    assert!(violations.is_empty(), "{violations:?}");
    wall
}

/// Measured (not gated) effect of the adaptive decision modes on one
/// Table-I-shaped fast campaign: the audited d-sweep runs once with the
/// fixed gate (today's default decision policy), then again with the
/// variance gate plus LOO-CV model selection, the σ² threshold
/// self-calibrated from the fixed sweep's own mean accepted variance —
/// roughly half the would-be interpolations sit above it, so the gate
/// has real rejections to show. Returns the JSON entry for the
/// `adaptive_gate` metric and logs the p/ε̄ deltas.
fn adaptive_gate_entry(problem: &str, workers: usize) -> Value {
    fn campaign(
        problem: &str,
        gate: Option<GatePolicy>,
        loo: bool,
        workers: usize,
    ) -> Vec<RunRecord> {
        let spec = CampaignSpec {
            name: format!("perfsmoke-gate-{problem}"),
            benchmarks: vec![problem.to_string()],
            gate,
            loo_select: loo.then_some(true),
            ..CampaignSpec::default()
        };
        let runs = spec.expand().expect("valid spec");
        run_specs_opts(
            runs,
            ExecOptions {
                workers,
                progress: Progress::Silent,
                policy: FaultPolicy::FailFast,
                journal: None,
                journal_options: SinkOptions::default(),
                progress_out: None,
                obs: None,
            },
        )
        .expect("gate campaign completes")
        .records
    }
    /// `(p_percent, audit_mean_eps, mean_variance, gate_rejections)`
    /// aggregated over the sweep: p from the raw query/kriged counters,
    /// ε̄ weighted by audit count, σ̄² weighted by kriged count.
    fn summarize(records: &[RunRecord]) -> (f64, f64, f64, u64) {
        let queries: u64 = records.iter().map(|r| r.queries).sum();
        let kriged: u64 = records.iter().map(|r| r.kriged).sum();
        let p = if queries > 0 {
            100.0 * kriged as f64 / queries as f64
        } else {
            0.0
        };
        let audits: u64 = records.iter().map(|r| r.audit_count).sum();
        let eps = if audits > 0 {
            records
                .iter()
                .map(|r| r.audit_mean_eps * r.audit_count as f64)
                .sum::<f64>()
                / audits as f64
        } else {
            0.0
        };
        let variance = if kriged > 0 {
            records
                .iter()
                .map(|r| r.mean_variance * r.kriged as f64)
                .sum::<f64>()
                / kriged as f64
        } else {
            0.0
        };
        let rejections: u64 = records.iter().map(|r| r.gate_rejections).sum();
        (p, eps, variance, rejections)
    }
    let fixed = campaign(problem, None, false, workers);
    let (p_fixed, eps_fixed, var_fixed, _) = summarize(&fixed);
    let threshold = if var_fixed > 0.0 { var_fixed } else { 1.0 };
    let adaptive = campaign(
        problem,
        Some(GatePolicy::Variance { threshold }),
        true,
        workers,
    );
    let (p_adaptive, eps_adaptive, var_adaptive, rejections) = summarize(&adaptive);
    eprintln!(
        "  adaptive gate {problem:<4} p {p_fixed:>6.2}% -> {p_adaptive:>6.2}%, \
         audit eps {eps_fixed:.4} -> {eps_adaptive:.4}, \
         rejections {rejections} (threshold {threshold:.4})"
    );
    obj(vec![
        ("variance_threshold", num(threshold)),
        (
            "fixed",
            obj(vec![
                ("p_percent", num(p_fixed)),
                ("audit_mean_eps", num(eps_fixed)),
                ("mean_variance", num(var_fixed)),
            ]),
        ),
        (
            "variance_loo",
            obj(vec![
                ("p_percent", num(p_adaptive)),
                ("audit_mean_eps", num(eps_adaptive)),
                ("mean_variance", num(var_adaptive)),
                ("gate_rejections", Value::Number(Number::PosInt(rejections))),
            ]),
        ),
    ])
}

fn table1_fast_wall_s(workers: usize) -> f64 {
    let start = Instant::now();
    let table = run_table_parallel(
        Problem::all().as_ref(),
        Scale::Fast,
        &[2.0, 3.0, 4.0, 5.0],
        3,
        workers,
    )
    .expect("table1 fast campaign");
    std::hint::black_box(table.rows.len());
    start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_kriging.json".to_string();
    let mut skip_table1 = false;
    let mut workers = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--skip-table1" => skip_table1 = true,
            "--workers" => {
                i += 1;
                workers = args[i].parse().expect("--workers takes a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perfsmoke [--out PATH] [--skip-table1] [--workers N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("perfsmoke: measuring kriging hot paths ({host_cores} host cores) ...");
    let n16 = kriging_solve_us(16);
    eprintln!("  kriging solve n=16        {n16:>10.3} us");
    let n32 = kriging_solve_us(32);
    eprintln!("  kriging solve n=32        {n32:>10.3} us");
    let oneshot = oneshot_predict_24_us();
    eprintln!("  one-shot predict 24 sites {oneshot:>10.3} us");
    let (multi_rhs, variance_pred) = multi_rhs_predict_us();
    eprintln!("  multi-RHS predict (24)    {multi_rhs:>10.3} us/prediction");
    let variance_ratio = variance_pred / multi_rhs;
    eprintln!(
        "  multi-RHS + variance (24) {variance_pred:>10.3} us/prediction (x{variance_ratio:.3})"
    );
    let (approx_exact, approx_screened) = approx_predict_n64_us();
    eprintln!(
        "  approx predict n=64       {approx_screened:>10.3} us (exact {approx_exact:.3} us)"
    );
    let refit = variogram_refit_us();
    eprintln!("  variogram refit (+5 @ 60) {refit:>10.3} us");
    let hybrid = hybrid_steady_state_us();
    eprintln!("  hybrid kriged evaluate    {hybrid:>10.3} us");
    let (obs_base, obs_with) = hybrid_obs_overhead_us();
    let obs_ratio = obs_with / obs_base;
    eprintln!(
        "  kriged evaluate + obs     {obs_with:>10.3} us (base {obs_base:.3} us, x{obs_ratio:.3})"
    );
    let mp_serial = minplusone_iir8_ms(None);
    eprintln!("  min+1 iir8 inline         {mp_serial:>10.3} ms");
    let mp_engine1 = minplusone_iir8_ms(Some(1));
    eprintln!("  min+1 iir8 engine @1      {mp_engine1:>10.3} ms");
    let mp_engine4 = minplusone_iir8_ms(Some(4));
    eprintln!("  min+1 iir8 engine @4      {mp_engine4:>10.3} ms");
    let server_rtt = server_roundtrip_us();
    eprintln!("  serve kriged RTT          {server_rtt:>10.3} us");
    let (shard_ms, merge_ms) = shard_merge_wall_ms();
    eprintln!("  3-shard chaos campaign    {shard_ms:>10.3} ms");
    eprintln!("  shard merge               {merge_ms:>10.3} ms");
    let (deflate_ratio, encode_mib_s, decode_mib_s) = deflate_metrics();
    eprintln!(
        "  deflate journal corpus    ratio {deflate_ratio:.3}, \
         encode {encode_mib_s:.1} MiB/s, decode {decode_mib_s:.1} MiB/s"
    );
    let gate_fir = adaptive_gate_entry("fir", workers);
    let gate_iir = adaptive_gate_entry("iir", workers);
    // The matrix rides the same skip flag as table1: CI runs `campaign
    // matrix --smoke` as its own job step, so the perfsmoke regression
    // smoke stays cheap; the committed JSON carries both wall times.
    let matrix = if skip_table1 {
        None
    } else {
        eprintln!("  smoke matrix ({workers} workers) ...");
        let s = matrix_smoke_wall_s(workers);
        eprintln!("  smoke matrix wall         {s:>10.3} s");
        Some(s)
    };
    let table1 = if skip_table1 {
        None
    } else {
        eprintln!("  table1 fast campaign ({workers} workers) ...");
        let s = table1_fast_wall_s(workers);
        eprintln!("  table1 fast wall          {s:>10.3} s");
        Some(s)
    };

    let mut metrics = vec![
        (
            "kriging_solve_n16_us",
            metric(Some(baseline::KRIGING_SOLVE_N16_US), n16),
        ),
        (
            "kriging_solve_n32_us",
            metric(Some(baseline::KRIGING_SOLVE_N32_US), n32),
        ),
        (
            "oneshot_predict_24sites_us",
            metric(Some(baseline::ONESHOT_PREDICT_24_US), oneshot),
        ),
        (
            "multi_rhs_predict_us",
            metric(Some(baseline::PER_QUERY_PREDICT_24_US), multi_rhs),
        ),
        (
            "variance_predict_us",
            obj(vec![
                ("value_only_us", num(multi_rhs)),
                ("with_variance_us", num(variance_pred)),
                ("overhead_ratio", num(variance_ratio)),
            ]),
        ),
        (
            "approx_predict_n64_us",
            obj(vec![
                ("exact_us", num(approx_exact)),
                ("screened_us", num(approx_screened)),
                ("speedup", num(approx_exact / approx_screened)),
            ]),
        ),
        (
            "variogram_refit_us",
            metric(Some(baseline::VARIOGRAM_REFIT_US), refit),
        ),
        ("hybrid_steady_state_evaluate_us", metric(None, hybrid)),
        (
            "observability",
            obj(vec![
                ("kriged_evaluate_base_us", num(obs_base)),
                ("kriged_evaluate_obs_us", num(obs_with)),
                ("overhead_ratio", num(obs_ratio)),
            ]),
        ),
        (
            "minplusone_iir8_end_to_end",
            obj(vec![
                ("serial_inline_ms", num(mp_serial)),
                ("engine_1worker_ms", num(mp_engine1)),
                ("engine_4workers_ms", num(mp_engine4)),
                ("speedup_4workers", num(mp_serial / mp_engine4)),
                ("overhead_1worker", num(mp_engine1 / mp_serial)),
                (
                    "host_cores",
                    Value::Number(Number::PosInt(host_cores as u64)),
                ),
            ]),
        ),
        (
            "server_roundtrip",
            obj(vec![
                ("kriged_rtt_us", num(server_rtt)),
                ("budget_us", num(SERVER_RTT_BUDGET_US)),
            ]),
        ),
        (
            "shard_merge",
            obj(vec![
                ("shards", Value::Number(Number::PosInt(3))),
                ("shard_wall_ms", num(shard_ms)),
                ("merge_wall_ms", num(merge_ms)),
            ]),
        ),
        (
            "deflate_journal",
            obj(vec![
                ("compression_ratio", num(deflate_ratio)),
                ("encode_mib_s", num(encode_mib_s)),
                ("decode_mib_s", num(decode_mib_s)),
            ]),
        ),
        (
            "adaptive_gate",
            obj(vec![("fir", gate_fir), ("iir", gate_iir)]),
        ),
    ];
    if let Some(s) = matrix {
        metrics.push(("matrix_smoke_wall_s", metric(None, s)));
    }
    if let Some(s) = table1 {
        metrics.push((
            "table1_fast_wall_s",
            metric(Some(baseline::TABLE1_FAST_WALL_S), s),
        ));
    }

    let doc = obj(vec![
        ("tool", Value::String("perfsmoke".to_string())),
        (
            "baseline_note",
            Value::String(
                "frozen medians from the pre-overhaul commit (dense one-shot LU \
                 solves, batch variogram rebuilds), same container, release profile"
                    .to_string(),
            ),
        ),
        (
            "units",
            Value::String("microseconds unless the key says otherwise".to_string()),
        ),
        ("metrics", obj(metrics)),
    ]);
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_kriging.json");
    eprintln!("perfsmoke: wrote {out_path}");

    // Regression gate: the headline criterion from the issue — the n=16
    // solve must hold at least a 2x margin over the frozen baseline.
    let required = baseline::KRIGING_SOLVE_N16_US / 2.0;
    if n16 > required {
        eprintln!("perfsmoke: FAIL kriging solve n=16 is {n16:.3} us (budget {required:.3} us)");
        std::process::exit(1);
    }
    // Second gate: the engine backend at 1 worker stays on the caller's
    // thread, so it may not cost more than a modest cache-hashing overhead
    // over the inline backend.
    let backend_budget = mp_serial * 1.3;
    if mp_engine1 > backend_budget {
        eprintln!(
            "perfsmoke: FAIL engine backend @1 worker is {mp_engine1:.3} ms \
             (inline {mp_serial:.3} ms, budget {backend_budget:.3} ms)"
        );
        std::process::exit(1);
    }
    // Third gate: attaching the metrics bundle may not slow the kriged
    // hot path by more than 8% — obs is meant to be always-on-able. The
    // budget was 3% before the variance gate landed; the bundle now also
    // records every accepted prediction's σ² into the
    // `hybrid_kriging_variance` histogram (a 12-bucket scan plus three
    // relaxed atomic adds per kriged evaluate, measured at ~3% of the
    // ~1.2 us evaluate), so the cap moved with the added work while
    // still catching a per-evaluate allocation or lock regression.
    if obs_ratio > 1.08 {
        eprintln!(
            "perfsmoke: FAIL observability overhead is x{obs_ratio:.3} on the kriged \
             evaluate ({obs_with:.3} us vs {obs_base:.3} us base, budget x1.080)"
        );
        std::process::exit(1);
    }
    // Fourth gate: one kriged evaluate through the full server stack
    // (loopback TCP + frame codec + session dispatch) must stay
    // interactive.
    if server_rtt > SERVER_RTT_BUDGET_US {
        eprintln!(
            "perfsmoke: FAIL serve kriged round trip is {server_rtt:.3} us \
             (budget {SERVER_RTT_BUDGET_US:.3} us)"
        );
        std::process::exit(1);
    }
    // Fifth gate: the factor-once/solve-many batch path must hold at
    // least a 2x per-prediction margin over the per-query factored
    // baseline — the headline criterion of the multi-RHS work.
    let multi_rhs_budget = baseline::PER_QUERY_PREDICT_24_US / 2.0;
    if multi_rhs > multi_rhs_budget {
        eprintln!(
            "perfsmoke: FAIL multi-RHS predict is {multi_rhs:.3} us/prediction \
             (per-query baseline {:.3} us, budget {multi_rhs_budget:.3} us)",
            baseline::PER_QUERY_PREDICT_24_US
        );
        std::process::exit(1);
    }
    // New with the variance gate: reading σ² out of the batch path —
    // what the variance gate does on every decision — may cost at most
    // 5% over the value-only batch. σ² falls out of the same bordered
    // solve as the weights, so a bigger gap means the prediction path
    // started recomputing something per target.
    let variance_budget = multi_rhs * 1.05;
    if variance_pred > variance_budget {
        eprintln!(
            "perfsmoke: FAIL multi-RHS predict with variance readout is \
             {variance_pred:.3} us/prediction (value-only {multi_rhs:.3} us, \
             budget {variance_budget:.3} us)"
        );
        std::process::exit(1);
    }
    // Sixth gate: the screened (approx-path) solve must actually be
    // cheaper than the exact n=64 solve it stands in for — 2x margin on
    // an O(n^3) cut of 64 -> 16 sites is very conservative.
    if approx_screened * 2.0 > approx_exact {
        eprintln!(
            "perfsmoke: FAIL screened n=64 predict is {approx_screened:.3} us \
             vs exact {approx_exact:.3} us (must hold a 2x margin)"
        );
        std::process::exit(1);
    }
    // Seventh gate (always on, unlike the table1 gate below): the kriged
    // steady-state evaluate is the end-to-end hot path every campaign
    // spends its time in; CI runs with --skip-table1, so this is what
    // catches a silent end-to-end slowdown there. Budget is ~2.4x the
    // 1.26 us measured on this container — microbench noise on a loaded
    // host stays well inside it, a real regression does not.
    const HYBRID_STEADY_STATE_BUDGET_US: f64 = 3.0;
    if hybrid > HYBRID_STEADY_STATE_BUDGET_US {
        eprintln!(
            "perfsmoke: FAIL hybrid kriged evaluate is {hybrid:.3} us \
             (budget {HYBRID_STEADY_STATE_BUDGET_US:.3} us)"
        );
        std::process::exit(1);
    }
    // DEFLATE gates, deliberately conservative: a JSONL journal corpus
    // compresses to roughly a quarter of its size under the
    // fixed-Huffman greedy matcher, so a 0.5 ratio ceiling only fires if
    // the encoder degenerates to (near) stored blocks; the throughput
    // floors sit an order of magnitude under the measured release-build
    // numbers and exist to catch an accidental quadratic match loop, not
    // host-load noise.
    if deflate_ratio > 0.5 {
        eprintln!(
            "perfsmoke: FAIL deflate journal ratio is {deflate_ratio:.3} \
             (budget 0.500 — encoder has stopped finding matches)"
        );
        std::process::exit(1);
    }
    if encode_mib_s < 5.0 {
        eprintln!(
            "perfsmoke: FAIL deflate encode throughput is {encode_mib_s:.1} MiB/s \
             (floor 5.0 MiB/s)"
        );
        std::process::exit(1);
    }
    if decode_mib_s < 10.0 {
        eprintln!(
            "perfsmoke: FAIL deflate decode throughput is {decode_mib_s:.1} MiB/s \
             (floor 10.0 MiB/s)"
        );
        std::process::exit(1);
    }
    // When the matrix is measured, hold its wall clock under a generous
    // ceiling: the smoke matrix is the CI-facing entry point, and a
    // pathological regression there (a benchmark falling back to pure
    // simulation, say) shows up as a multiple of the ~30 s it takes on
    // this container.
    if let Some(s) = matrix {
        const MATRIX_SMOKE_BUDGET_S: f64 = 120.0;
        if s > MATRIX_SMOKE_BUDGET_S {
            eprintln!(
                "perfsmoke: FAIL smoke matrix wall is {s:.3} s \
                 (budget {MATRIX_SMOKE_BUDGET_S:.3} s)"
            );
            std::process::exit(1);
        }
    }
    // Eighth gate: when table1 is measured, its wall clock may not creep
    // past 1.25x the frozen baseline. The 33.5 s recorded at one earlier
    // commit was measurement noise on a loaded host (every metric in
    // that snapshot inflated 1.2-1.5x uniformly, including core paths
    // the commit never touched); this gate turns any *real* end-to-end
    // slowdown of that size into a hard failure instead of a silently
    // committed number.
    if let Some(s) = table1 {
        let budget = baseline::TABLE1_FAST_WALL_S * 1.25;
        if s > budget {
            eprintln!(
                "perfsmoke: FAIL table1 fast wall is {s:.3} s \
                 (baseline {:.3} s, budget {budget:.3} s)",
                baseline::TABLE1_FAST_WALL_S
            );
            std::process::exit(1);
        }
    }
    eprintln!("perfsmoke: ok (n=16 solve {n16:.3} us <= budget {required:.3} us)");
}
