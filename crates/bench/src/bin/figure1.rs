//! Reproduces the paper's Figure 1: the FIR noise-power surface over the
//! adder/multiplier word-lengths, as CSV on stdout.
//!
//! ```text
//! figure1 [--scale fast|paper] [--out PATH]
//! ```

use std::process::ExitCode;

use krigeval_bench::figure1::{fir_surface, to_csv};
use krigeval_bench::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = if args[i] == "fast" {
                    Scale::Fast
                } else {
                    Scale::Paper
                };
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    match fir_surface(scale) {
        Ok(surface) => {
            let csv = to_csv(&surface);
            match out {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, csv) {
                        eprintln!("failed to write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path} ({} points)", surface.len());
                }
                None => print!("{csv}"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("surface generation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
