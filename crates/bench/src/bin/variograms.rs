//! Reports the variogram model identified for each benchmark (the paper's
//! once-per-application identification step) together with its
//! leave-one-out cross-validation error.
//!
//! ```text
//! variograms [--scale fast|paper]
//! ```

use std::process::ExitCode;

use krigeval_bench::suite::{build, Problem};
use krigeval_bench::Scale;
use krigeval_core::opt::descent::budget_error_sources;
use krigeval_core::opt::minplusone::optimize;
use krigeval_core::opt::SimulateAll;
use krigeval_core::validation::leave_one_out;
use krigeval_core::variogram::{fit_model, EmpiricalVariogram, ModelFamily};
use krigeval_core::DistanceMetric;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = if args[i] == "fast" {
                    Scale::Fast
                } else {
                    Scale::Paper
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    println!(
        "{:<14} {:<12} {:>8} {:>10} {:>10} {:>8}",
        "benchmark", "family", "points", "sse", "loo rmse", "skipped"
    );
    for problem in Problem::extended() {
        // Pilot run records the (config, λ) pairs.
        let instance = build(problem, scale);
        let mut pilot = SimulateAll(instance.evaluator);
        let spec = build(problem, scale);
        let result = if let Some(opts) = spec.minplusone {
            optimize(&mut pilot, &opts)
        } else if let Some(opts) = spec.descent {
            budget_error_sources(&mut pilot, &opts)
        } else {
            unreachable!()
        };
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", problem.label());
                return ExitCode::FAILURE;
            }
        };
        let mut configs = Vec::new();
        let mut values = Vec::new();
        for step in &result.trace.steps {
            if !configs.contains(&step.config) {
                configs.push(step.config.clone());
                values.push(step.lambda);
            }
        }
        let report = EmpiricalVariogram::from_configs(&configs, &values, DistanceMetric::L1)
            .and_then(|emp| fit_model(&emp, &ModelFamily::all()));
        match report {
            Ok(report) => {
                let cv = leave_one_out(
                    &configs,
                    &values,
                    &report.model,
                    DistanceMetric::L1,
                    Some(4.0),
                );
                match cv {
                    Ok(cv) => println!(
                        "{:<14} {:<12} {:>8} {:>10.1} {:>10.3} {:>8}",
                        problem.label(),
                        report.model.family_name(),
                        configs.len(),
                        report.weighted_sse,
                        cv.rmse,
                        cv.skipped,
                    ),
                    Err(e) => println!(
                        "{:<14} {:<12} {:>8} {:>10.1} {:>10} {:>8}",
                        problem.label(),
                        report.model.family_name(),
                        configs.len(),
                        report.weighted_sse,
                        format!("({e})"),
                        "-",
                    ),
                }
            }
            Err(e) => {
                println!("{:<14} fit failed: {e}", problem.label());
            }
        }
    }
    ExitCode::SUCCESS
}
