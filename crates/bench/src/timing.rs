//! Per-evaluation timing: simulation vs kriging (§IV prose).
//!
//! The paper reports a kriging interpolation time of ~10⁻⁶ s against
//! simulation times of 2.4 s (filters) and 1.37 s (HEVC), and projects the
//! refinement-time reduction from the interpolated fraction `p`:
//! `t_hybrid / t_sim ≈ (1 − p) + p·(t_krige / t_sim)`.

use std::time::Instant;

use krigeval_core::kriging::KrigingEstimator;
use krigeval_core::opt::OptError;
use krigeval_core::{Config, VariogramModel};

use crate::suite::{build, Problem};
use crate::Scale;

/// Timing measurement for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingRow {
    /// Which benchmark.
    pub problem: Problem,
    /// Mean wall-clock of one simulation-based metric evaluation (seconds).
    pub t_sim: f64,
    /// Mean wall-clock of one kriging interpolation (seconds).
    pub t_krige: f64,
}

impl TimingRow {
    /// Per-evaluation speed-up `t_sim / t_krige`.
    pub fn per_eval_speedup(&self) -> f64 {
        self.t_sim / self.t_krige
    }

    /// Projected total refinement speed-up when a fraction `p ∈ [0, 1]` of
    /// the evaluations is interpolated (the paper's "time divided by N"
    /// claims: `p = 0.9` on HEVC ⇒ ÷10, `p = 0.8` on FFT ⇒ ÷5).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn projected_speedup(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "fraction must be in [0, 1]");
        1.0 / ((1.0 - p) + p * self.t_krige / self.t_sim)
    }
}

/// Measures mean simulation and kriging times for one benchmark.
///
/// Simulation: `reps` evaluations of a mid-range configuration.
/// Kriging: `reps` ordinary-kriging solves over `neighbors` sites — the
/// paper's observed mean neighbourhood is 2–4 sites, so the default of 4
/// is the honest (slower) end.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn measure(
    problem: Problem,
    scale: Scale,
    reps: usize,
    neighbors: usize,
) -> Result<TimingRow, OptError> {
    let mut instance = build(problem, scale);
    let nv = instance.evaluator.num_variables();
    let mid: Config = vec![8; nv];
    // Warm-up + timed simulation runs.
    instance.evaluator.evaluate(&mid)?;
    let start = Instant::now();
    for _ in 0..reps {
        instance.evaluator.evaluate(&mid)?;
    }
    let t_sim = start.elapsed().as_secs_f64() / reps as f64;

    // Kriging solve over a realistic neighbourhood.
    let estimator = KrigingEstimator::new(VariogramModel::linear(1.0));
    let sites: Vec<Config> = (0..neighbors)
        .map(|k| {
            let mut c = mid.clone();
            c[k % nv] += 1 + (k / nv) as i32;
            c
        })
        .collect();
    let values: Vec<f64> = (0..neighbors).map(|k| 50.0 + k as f64).collect();
    let target: Config = {
        let mut c = mid.clone();
        c[0] -= 1;
        c
    };
    let p = estimator
        .predict_config(&sites, &values, &target)
        .map_err(|e| OptError::Eval(krigeval_core::EvalError::msg(e.to_string())))?;
    assert!(p.value.is_finite());
    let start = Instant::now();
    for _ in 0..reps {
        let p = estimator
            .predict_config(&sites, &values, &target)
            .expect("warm kriging solve cannot fail");
        std::hint::black_box(p.value);
    }
    let t_krige = start.elapsed().as_secs_f64() / reps as f64;

    Ok(TimingRow {
        problem,
        t_sim,
        t_krige,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kriging_is_much_faster_than_simulation() {
        // Even at Fast scale and debug builds, the gap is orders of
        // magnitude — this is the paper's core economic argument.
        let row = measure(Problem::Fir, Scale::Fast, 3, 4).unwrap();
        assert!(
            row.per_eval_speedup() > 10.0,
            "speedup only {}",
            row.per_eval_speedup()
        );
    }

    #[test]
    fn projected_speedup_matches_paper_arithmetic() {
        let row = TimingRow {
            problem: Problem::Hevc,
            t_sim: 1.37,
            t_krige: 1e-6,
        };
        // 90 % interpolation ⇒ time divided by ~10.
        let s = row.projected_speedup(0.9);
        assert!((s - 10.0).abs() < 0.1, "s = {s}");
        // 80 % ⇒ ~5.
        let s = row.projected_speedup(0.8);
        assert!((s - 5.0).abs() < 0.1, "s = {s}");
        // 0 % ⇒ no change.
        assert!((row.projected_speedup(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn projected_speedup_validates_fraction() {
        let row = TimingRow {
            problem: Problem::Fir,
            t_sim: 1.0,
            t_krige: 1e-6,
        };
        let _ = row.projected_speedup(1.5);
    }
}
