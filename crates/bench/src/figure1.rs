//! Figure 1 reproduction: the FIR noise-power surface over
//! `(w_add, w_mpy)`.

use krigeval_kernels::fir::FirBenchmark;
use krigeval_kernels::{KernelError, WordLengthBenchmark};

use crate::Scale;

/// One sample of the Figure 1 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    /// Adder-output word-length.
    pub w_add: i32,
    /// Multiplier-output word-length.
    pub w_mpy: i32,
    /// Output noise power in dB.
    pub noise_db: f64,
}

/// Sweeps the full `(w_add, w_mpy)` grid of the FIR benchmark and returns
/// the noise-power surface of Figure 1.
///
/// # Errors
///
/// Propagates kernel simulation errors (cannot occur for the default
/// word-length range).
///
/// # Examples
///
/// ```no_run
/// let surface = krigeval_bench::figure1::fir_surface(krigeval_bench::Scale::Fast).unwrap();
/// assert!(!surface.is_empty());
/// ```
pub fn fir_surface(scale: Scale) -> Result<Vec<SurfacePoint>, KernelError> {
    let bench = match scale {
        Scale::Fast => FirBenchmark::new(64, 0.2, 512, 0xF1E6_4001),
        Scale::Paper => FirBenchmark::with_defaults(),
    };
    let mut out = Vec::new();
    for w_add in bench.min_word_length()..=bench.max_word_length() {
        for w_mpy in bench.min_word_length()..=bench.max_word_length() {
            let p = bench.noise_power(&[w_add, w_mpy])?;
            out.push(SurfacePoint {
                w_add,
                w_mpy,
                noise_db: p.db(),
            });
        }
    }
    Ok(out)
}

/// Renders the surface as CSV (`w_add,w_mpy,noise_db`), the format the
/// plotting script in `EXPERIMENTS.md` consumes.
pub fn to_csv(surface: &[SurfacePoint]) -> String {
    let mut s = String::from("w_add,w_mpy,noise_db\n");
    for p in surface {
        s.push_str(&format!("{},{},{:.4}\n", p.w_add, p.w_mpy, p.noise_db));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_covers_the_grid_and_slopes_downward() {
        let surface = fir_surface(Scale::Fast).unwrap();
        assert_eq!(surface.len(), 15 * 15); // word-lengths 2..=16
        let corner_low = surface
            .iter()
            .find(|p| p.w_add == 2 && p.w_mpy == 2)
            .unwrap();
        let corner_high = surface
            .iter()
            .find(|p| p.w_add == 16 && p.w_mpy == 16)
            .unwrap();
        // Figure 1's shape: noise falls monotonically toward wide formats.
        assert!(corner_high.noise_db < corner_low.noise_db - 40.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let surface = vec![SurfacePoint {
            w_add: 8,
            w_mpy: 9,
            noise_db: -47.25,
        }];
        let csv = to_csv(&surface);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("w_add,w_mpy,noise_db"));
        assert_eq!(lines.next(), Some("8,9,-47.2500"));
    }
}
