//! Table I reproduction: per-(benchmark, d) hybrid-evaluation statistics.

use krigeval_core::hybrid::{HybridEvaluator, HybridSettings, VariogramPolicy};
use krigeval_core::opt::descent::budget_error_sources;
use krigeval_core::opt::minplusone::optimize;
use krigeval_core::opt::{DseEvaluator, OptError, SimulateAll};
use krigeval_core::report::{Table, TableRow};
use krigeval_core::variogram::{fit_model, EmpiricalVariogram, ModelFamily};
use krigeval_core::{DistanceMetric, VariogramModel};

use crate::suite::{build, Problem, ProblemInstance};
use crate::Scale;

/// Identifies the variogram model for a problem by running the optimizer
/// once with pure simulation and fitting the recorded `(config, λ)` pairs —
/// the paper's setup ("the identification of the semi-variogram has to be
/// done once for a particular metric and application"; their Table I replay
/// starts from the exhaustively recorded trajectory).
///
/// # Errors
///
/// Propagates optimizer failures from the pilot run.
pub fn identify_variogram(problem: Problem, scale: Scale) -> Result<VariogramModel, OptError> {
    let instance = build(problem, scale);
    let mut pilot = SimulateAll(instance.evaluator);
    let result = run_optimizer(problem, &mut pilot, scale)?;
    // Deduplicate configurations (revisits would create zero-distance pairs).
    let mut configs: Vec<Vec<i32>> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for step in &result.trace.steps {
        if !configs.contains(&step.config) {
            configs.push(step.config.clone());
            values.push(step.lambda);
        }
    }
    let model = EmpiricalVariogram::from_configs(&configs, &values, DistanceMetric::L1)
        .and_then(|emp| fit_model(&emp, &ModelFamily::all()))
        .map(|report| report.model)
        .unwrap_or_else(|_| VariogramModel::linear(1.0));
    Ok(model)
}

fn run_optimizer(
    problem: Problem,
    evaluator: &mut dyn DseEvaluator,
    scale: Scale,
) -> Result<krigeval_core::opt::OptimizationResult, OptError> {
    let instance = build(problem, scale);
    if let Some(opts) = instance.minplusone {
        optimize(evaluator, &opts)
    } else if let Some(opts) = instance.descent {
        budget_error_sources(evaluator, &opts)
    } else {
        unreachable!("every problem has an optimizer")
    }
}

/// Runs one `(benchmark, d, N_n,min)` cell of Table I following the paper's
/// two-stage protocol: (1) a pilot pure-simulation run identifies the
/// variogram once; (2) the optimizer re-runs with the kriging-based hybrid
/// evaluator in audit mode, and the session statistics become the row.
///
/// # Errors
///
/// Propagates optimizer failures ([`OptError`]); an infeasible constraint
/// at reduced scale indicates a mis-built instance and should surface, not
/// be masked.
///
/// # Examples
///
/// ```no_run
/// use krigeval_bench::{table1::run_row, suite::Problem, Scale};
///
/// let row = run_row(Problem::Fir, Scale::Fast, 3.0, 3).unwrap();
/// assert!(row.p_percent >= 0.0);
/// ```
pub fn run_row(
    problem: Problem,
    scale: Scale,
    d: f64,
    min_neighbors: usize,
) -> Result<TableRow, OptError> {
    let model = identify_variogram(problem, scale)?;
    run_row_with_model(problem, scale, d, min_neighbors, model)
}

/// Like [`run_row`] but with a caller-supplied variogram model (lets a
/// distance sweep reuse one pilot identification, as the paper does).
///
/// # Errors
///
/// See [`run_row`].
pub fn run_row_with_model(
    problem: Problem,
    scale: Scale,
    d: f64,
    min_neighbors: usize,
    model: VariogramModel,
) -> Result<TableRow, OptError> {
    let instance: ProblemInstance = build(problem, scale);
    let settings = HybridSettings {
        distance: d,
        min_neighbors,
        variogram: VariogramPolicy::Fixed(model),
        audit: Some(problem.audit_metric()),
        ..HybridSettings::default()
    };
    let mut hybrid = HybridEvaluator::new(instance.evaluator, settings);
    if let Some(opts) = instance.minplusone {
        optimize(&mut hybrid, &opts)?;
    } else if let Some(opts) = instance.descent {
        budget_error_sources(&mut hybrid, &opts)?;
    }
    Ok(TableRow::from_stats(
        problem.label(),
        problem.metric_label(),
        problem.nv(),
        d,
        hybrid.stats(),
    ))
}

/// Runs a full table: every requested problem × every distance.
///
/// # Errors
///
/// Fails on the first cell whose optimization fails (see [`run_row`]).
pub fn run_table(
    problems: &[Problem],
    scale: Scale,
    distances: &[f64],
    min_neighbors: usize,
) -> Result<Table, OptError> {
    let mut table = Table::new();
    for &problem in problems {
        // One pilot identification per benchmark, reused across distances
        // (the paper identifies the variogram once per application/metric).
        let model = identify_variogram(problem, scale)?;
        for &d in distances {
            table.push(run_row_with_model(problem, scale, d, min_neighbors, model)?);
        }
    }
    Ok(table)
}

/// Converts an engine run record into a Table I row (drops the campaign
/// bookkeeping columns).
pub fn record_to_row(record: &krigeval_engine::RunRecord) -> TableRow {
    TableRow {
        benchmark: record.benchmark.clone(),
        metric: record.metric.clone(),
        nv: record.nv,
        d: record.d,
        p_percent: record.p_percent,
        mean_neighbors: record.mean_neighbors,
        max_eps: record.audit_max_eps,
        mean_eps: record.audit_mean_eps,
        simulated: record.simulated,
        kriged: record.kriged,
        queries: record.queries,
    }
}

/// Engine-backed [`run_table`]: the same Table I protocol (pilot
/// identification + fixed-model hybrid run, audit on), expressed as a
/// [`krigeval_engine::CampaignSpec`] and executed on a worker pool with
/// the shared simulation cache. With `workers = 1` this produces the same
/// rows as the sequential path — see the `engine_matches_sequential_rows`
/// test — only faster, because repeated pilot simulations are shared.
///
/// # Errors
///
/// Propagates campaign failures ([`krigeval_engine::EngineError`]).
pub fn run_table_parallel(
    problems: &[Problem],
    scale: Scale,
    distances: &[f64],
    min_neighbors: usize,
    workers: usize,
) -> Result<Table, krigeval_engine::EngineError> {
    let spec = krigeval_engine::CampaignSpec {
        name: "table1".to_string(),
        benchmarks: problems.iter().map(|p| p.label().to_string()).collect(),
        scale: scale.label().to_string(),
        distances: distances.to_vec(),
        min_neighbors: vec![min_neighbors],
        ..krigeval_engine::CampaignSpec::default()
    };
    let outcome = krigeval_engine::run_campaign(&spec, workers, krigeval_engine::Progress::Silent)?;
    let mut table = Table::new();
    for record in &outcome.records {
        table.push(record_to_row(record));
    }
    Ok(table)
}

/// FIR **surface-replay** protocol: streams the full Figure 1 grid
/// (`(w_add, w_mpy) ∈ [2, 16]²`, row-major) through the hybrid evaluator
/// instead of an optimizer trajectory.
///
/// Rationale: with `Nv = 2` the min+1 trajectory is dominated by the two
/// phase-1 descent *lines*, on which at most two previously simulated
/// neighbours exist within `d ≤ 3` — so the strict `N_n > 3` rule can never
/// krige there, yet the paper reports 33–53 % interpolation for FIR at
/// `d ∈ {2, 3}`. Those percentages are only reachable on a denser recorded
/// configuration set, and the paper measures exactly such a set for FIR
/// (the Figure 1 surface). This replay reproduces the small-`d` FIR rows;
/// `EXPERIMENTS.md` reports both protocols.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fir_surface_replay(
    scale: Scale,
    d: f64,
    min_neighbors: usize,
) -> Result<TableRow, OptError> {
    let problem = Problem::Fir;
    // Identify the variogram from the surface itself (the paper identifies
    // once per application/metric from the recorded measurements — for FIR
    // that recorded set is the Figure 1 surface).
    let mut pilot = build(problem, scale);
    let mut configs = Vec::new();
    let mut values = Vec::new();
    for w_add in 2..=16 {
        for w_mpy in 2..=16 {
            let config = vec![w_add, w_mpy];
            let lambda = pilot.evaluator.evaluate(&config).map_err(OptError::Eval)?;
            configs.push(config);
            values.push(lambda);
        }
    }
    let model = EmpiricalVariogram::from_configs(&configs, &values, DistanceMetric::L1)
        .and_then(|emp| fit_model(&emp, &ModelFamily::all()))
        .map(|report| report.model)
        .unwrap_or_else(|_| VariogramModel::linear(1.0));
    let instance = build(problem, scale);
    let settings = HybridSettings {
        distance: d,
        min_neighbors,
        variogram: VariogramPolicy::Fixed(model),
        audit: Some(problem.audit_metric()),
        ..HybridSettings::default()
    };
    let mut hybrid = HybridEvaluator::new(instance.evaluator, settings);
    for w_add in 2..=16 {
        for w_mpy in 2..=16 {
            hybrid
                .evaluate(&vec![w_add, w_mpy])
                .map_err(OptError::Eval)?;
        }
    }
    Ok(TableRow::from_stats(
        "fir64(grid)",
        problem.metric_label(),
        problem.nv(),
        d,
        hybrid.stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_row_runs_and_interpolates_something() {
        let row = run_row(Problem::Fir, Scale::Fast, 3.0, 3).unwrap();
        assert_eq!(row.benchmark, "fir64");
        assert_eq!(row.nv, 2);
        assert!(row.queries > 0);
        assert!(row.simulated > 0);
        // The paper reports 52.78 % at d = 3; any nonzero interpolation at
        // Fast scale validates the plumbing (shape asserted in the
        // integration tests).
        assert!(row.p_percent >= 0.0);
    }

    #[test]
    fn interpolated_fraction_grows_with_distance_on_fir() {
        let p2 = run_row(Problem::Fir, Scale::Fast, 2.0, 3)
            .unwrap()
            .p_percent;
        let p5 = run_row(Problem::Fir, Scale::Fast, 5.0, 3)
            .unwrap()
            .p_percent;
        assert!(p5 >= p2, "p(d=5) = {p5} < p(d=2) = {p2}");
    }

    #[test]
    fn run_table_produces_requested_cells() {
        let table = run_table(&[Problem::Fir], Scale::Fast, &[2.0, 3.0], 3).unwrap();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].d, 2.0);
        assert_eq!(table.rows[1].d, 3.0);
    }

    /// The campaign engine must reproduce the sequential Table I rows
    /// exactly: same pilot protocol, same fixed-model hybrid runs, same
    /// audit statistics — the shared cache and the worker pool only change
    /// wall-clock time.
    #[test]
    fn engine_matches_sequential_rows() {
        let problems = [Problem::Fir, Problem::Iir];
        let distances = [2.0, 3.0];
        let sequential = run_table(&problems, Scale::Fast, &distances, 3).unwrap();
        let parallel = run_table_parallel(&problems, Scale::Fast, &distances, 3, 4).unwrap();
        assert_eq!(parallel.rows, sequential.rows);
    }
}
