//! Decision-divergence experiment (§IV prose): how many greedy decisions
//! change when the optimizer is driven by kriged values, and how far the
//! final solutions drift.
//!
//! The paper measures "approximately 10 %" differing decisions, with the
//! optimizer compensating to "end with a similar result".

use krigeval_core::hybrid::{HybridEvaluator, HybridSettings};
use krigeval_core::opt::descent::budget_error_sources;
use krigeval_core::opt::minplusone::optimize;
use krigeval_core::opt::{OptError, OptimizationResult, SimulateAll};
use krigeval_core::trace::decision_divergence;
use krigeval_core::DistanceMetric;

use crate::suite::{build, Problem};
use crate::Scale;

/// Outcome of the divergence experiment for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// Which benchmark.
    pub problem: Problem,
    /// Fraction of greedy decisions that differ (paper: ≈0.10).
    pub decision_divergence: f64,
    /// L1 distance between the two final solutions.
    pub solution_distance: f64,
    /// Final metric with pure simulation.
    pub lambda_sim: f64,
    /// Final metric (true, re-simulated) with kriging in the loop.
    pub lambda_hybrid: f64,
    /// Interpolated fraction during the hybrid run.
    pub interpolated_fraction: f64,
}

/// Runs one benchmark twice — pure simulation vs kriging-assisted — and
/// compares trajectories and results.
///
/// # Errors
///
/// Propagates optimizer failures from either run.
pub fn run(problem: Problem, scale: Scale, d: f64) -> Result<DivergenceReport, OptError> {
    // Pure-simulation reference run.
    let reference_instance = build(problem, scale);
    let mut reference = SimulateAll(reference_instance.evaluator);
    let ref_result = run_optimizer(problem, &mut reference, scale)?;

    // Kriging-assisted run on a fresh, identical instance.
    let hybrid_instance = build(problem, scale);
    let settings = HybridSettings {
        distance: d,
        ..HybridSettings::default()
    };
    let mut hybrid = HybridEvaluator::new(hybrid_instance.evaluator, settings);
    let hybrid_result = run_optimizer(problem, &mut hybrid, scale)?;
    let interpolated_fraction = hybrid.stats().interpolated_fraction();

    // Re-simulate the hybrid solution to get its *true* metric.
    let mut check = build(problem, scale).evaluator;
    let lambda_hybrid = check.evaluate(&hybrid_result.solution)?;

    Ok(DivergenceReport {
        problem,
        decision_divergence: decision_divergence(&ref_result.trace, &hybrid_result.trace),
        solution_distance: DistanceMetric::L1
            .eval_config(&ref_result.solution, &hybrid_result.solution),
        lambda_sim: ref_result.lambda,
        lambda_hybrid,
        interpolated_fraction,
    })
}

fn run_optimizer(
    problem: Problem,
    evaluator: &mut dyn krigeval_core::opt::DseEvaluator,
    scale: Scale,
) -> Result<OptimizationResult, OptError> {
    let instance = build(problem, scale);
    if let Some(opts) = instance.minplusone {
        optimize(evaluator, &opts)
    } else if let Some(opts) = instance.descent {
        budget_error_sources(evaluator, &opts)
    } else {
        unreachable!("every problem has an optimizer")
    }
}

/// Per-decision disagreement measured in **lockstep**: the reference
/// (pure-simulation) optimizer trajectory is replayed; at every greedy
/// iteration both the simulated and the kriged candidate metrics are
/// computed *for the same state*, and the two argmax choices are compared.
/// The committed step always follows the simulation, so one early
/// disagreement cannot cascade — this is the honest reading of the paper's
/// "number of different decisions ... approximately ranges 10 %".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockstepReport {
    /// Which benchmark.
    pub problem: Problem,
    /// Greedy iterations compared.
    pub decisions: usize,
    /// Iterations where the kriging-driven choice differed *at all*.
    ///
    /// This literal count overstates consequential divergence: on the
    /// word-length surfaces, most one-step candidates are **isometric** to
    /// the trajectory data under L1 (the stored configurations differ from
    /// the current state in coordinates the candidates do not touch), so
    /// kriging provably assigns them identical values and cannot rank
    /// them — picking any of the tied candidates is interchangeable, which
    /// is exactly the paper's observation that "the optimization algorithm
    /// compensates these different choices".
    pub disagreements: usize,
    /// Disagreements that are **material**: the kriging-driven choice's
    /// true (simulated) metric is worse than the simulation-driven choice's
    /// by more than 0.5 dB (or 0.02 for rate metrics) — the decisions that
    /// could actually cost quality. This is the number comparable to the
    /// paper's ≈10 %.
    pub material_disagreements: usize,
    /// Fraction of kriged candidate evaluations during the replay.
    pub interpolated_fraction: f64,
}

impl LockstepReport {
    /// Literal disagreement fraction.
    pub fn divergence(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.disagreements as f64 / self.decisions as f64
        }
    }

    /// Material disagreement fraction (comparable to the paper's ≈0.10).
    pub fn material_divergence(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.material_disagreements as f64 / self.decisions as f64
        }
    }
}

/// Runs the lockstep comparison for one benchmark.
///
/// # Errors
///
/// Propagates evaluation failures; [`OptError::Infeasible`] if the start of
/// the greedy phase cannot be established.
pub fn run_lockstep(problem: Problem, scale: Scale, d: f64) -> Result<LockstepReport, OptError> {
    run_lockstep_inner(problem, scale, d, None)
}

/// [`run_lockstep`] with **tie-breaking by simulation** in the kriged
/// choice: candidates within `tie_tolerance` of the kriged best are
/// re-simulated before the kriged argmax is declared. Measures how much
/// decision fidelity the tie-break machinery of
/// `krigeval_core::opt::minplusone::refine_with_tie_break` recovers.
///
/// # Errors
///
/// See [`run_lockstep`].
pub fn run_lockstep_with_tie_break(
    problem: Problem,
    scale: Scale,
    d: f64,
    tie_tolerance: f64,
) -> Result<LockstepReport, OptError> {
    run_lockstep_inner(problem, scale, d, Some(tie_tolerance))
}

fn run_lockstep_inner(
    problem: Problem,
    scale: Scale,
    d: f64,
    tie_tolerance: Option<f64>,
) -> Result<LockstepReport, OptError> {
    let reference_instance = build(problem, scale);
    let mut reference = SimulateAll(reference_instance.evaluator);
    let hybrid_instance = build(problem, scale);
    let mut hybrid = HybridEvaluator::new(
        hybrid_instance.evaluator,
        HybridSettings {
            distance: d,
            ..HybridSettings::default()
        },
    );

    use krigeval_core::opt::DseEvaluator;
    let spec = build(problem, scale);
    // Establish the greedy phase's start and the per-iteration move set.
    let (start, lambda_min, upper, step): (Vec<i32>, f64, i32, i32) =
        if let Some(opts) = spec.minplusone {
            // Phase 1 (per-variable minima) runs identically in both modes
            // here: feed both evaluators the same trajectory.
            let mut trace = krigeval_core::trace::OptimizationTrace::new();
            let wmin = krigeval_core::opt::minplusone::minimum_word_lengths(
                &mut reference,
                &opts,
                &mut trace,
            )?;
            for step in &trace.steps {
                let _ = hybrid.query(&step.config)?;
            }
            (wmin, opts.lambda_min, opts.w_max, 1)
        } else if let Some(opts) = spec.descent {
            let nv = reference.num_variables();
            (
                vec![opts.level_floor; nv],
                opts.lambda_min,
                opts.level_max,
                1,
            )
        } else {
            unreachable!("every problem has an optimizer")
        };
    let ascending_to_constraint = spec.minplusone.is_some();

    // Materiality threshold in the metric's units.
    // 0.5 dB for noise-power metrics; for classification rates, two images'
    // worth of agreements at the evaluation-set size (rate metrics are
    // quantized in steps of 1/num_images, so a smaller tolerance would call
    // single-image flickers "material").
    let material_tol = if ascending_to_constraint { 0.5 } else { 0.02 };

    let mut w = start;
    let (mut lambda, _) = reference.query(&w)?;
    let _ = hybrid.query(&w)?;
    let mut decisions = 0usize;
    let mut disagreements = 0usize;
    let mut material_disagreements = 0usize;
    for _ in 0..10_000u32 {
        // Stop conditions mirror the two optimizers.
        if ascending_to_constraint && lambda >= lambda_min {
            break;
        }
        let mut best_sim: Option<(usize, f64)> = None;
        let mut best_krig: Option<(usize, f64)> = None;
        let mut sim_values: Vec<Option<f64>> = vec![None; w.len()];
        let mut krig_values: Vec<Option<f64>> = vec![None; w.len()];
        for i in 0..w.len() {
            if w[i] >= upper {
                continue;
            }
            let mut candidate = w.clone();
            candidate[i] += step;
            let (l_sim, _) = reference.query(&candidate)?;
            let (l_krig, _) = hybrid.query(&candidate)?;
            sim_values[i] = Some(l_sim);
            krig_values[i] = Some(l_krig);
            let feasible_sim = ascending_to_constraint || l_sim >= lambda_min;
            let feasible_krig = ascending_to_constraint || l_krig >= lambda_min;
            if feasible_sim && best_sim.is_none_or(|(_, lb)| l_sim > lb) {
                best_sim = Some((i, l_sim));
            }
            if feasible_krig && best_krig.is_none_or(|(_, lb)| l_krig > lb) {
                best_krig = Some((i, l_krig));
            }
        }
        // Optional tie-break: re-simulate kriged near-ties before deciding.
        if let (Some(tol), Some((_, lb))) = (tie_tolerance, best_krig) {
            let tied: Vec<usize> = (0..w.len())
                .filter(|&i| w[i] < upper)
                .filter(|&i| krig_values[i].is_some_and(|l| l >= lb - tol))
                .collect();
            if tied.len() > 1 {
                let mut resolved: Option<(usize, f64)> = None;
                for i in tied {
                    let mut candidate = w.clone();
                    candidate[i] += step;
                    let exact = hybrid.query_exact(&candidate)?;
                    if resolved.is_none_or(|(_, r)| exact > r) {
                        resolved = Some((i, exact));
                    }
                }
                best_krig = resolved;
            }
        }
        let Some((jc_sim, lj)) = best_sim else {
            break; // descent: no feasible raise — done
        };
        decisions += 1;
        if let Some((jc_krig, _)) = best_krig {
            if jc_krig != jc_sim {
                disagreements += 1;
                // Material only if kriging's pick is truly worse.
                let true_value_of_krig_pick = sim_values[jc_krig].unwrap_or(f64::NEG_INFINITY);
                if lj - true_value_of_krig_pick > material_tol {
                    material_disagreements += 1;
                }
            }
        } else {
            disagreements += 1;
            material_disagreements += 1;
        }
        w[jc_sim] += step;
        lambda = lj;
    }
    Ok(LockstepReport {
        problem,
        decisions,
        disagreements,
        material_disagreements,
        interpolated_fraction: hybrid.stats().interpolated_fraction(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_divergence_is_bounded_and_solutions_close() {
        let report = run(Problem::Fir, Scale::Fast, 3.0).unwrap();
        // The paper observes ~10 % differing decisions; allow a generous
        // envelope but catch pathological divergence.
        assert!(
            report.decision_divergence <= 0.6,
            "divergence {}",
            report.decision_divergence
        );
        // Final solutions within a few unit steps of each other.
        assert!(
            report.solution_distance <= 4.0,
            "solutions drifted {} steps apart",
            report.solution_distance
        );
    }

    #[test]
    fn hybrid_solution_remains_feasible_or_near_feasible() {
        let report = run(Problem::Fir, Scale::Fast, 3.0).unwrap();
        // The kriging-assisted run's true accuracy must be close to the
        // constraint the pure run satisfies (within ~1 interpolation error).
        assert!(
            report.lambda_hybrid >= report.lambda_sim - 12.0,
            "hybrid λ {} vs sim λ {}",
            report.lambda_hybrid,
            report.lambda_sim
        );
    }
}
