//! Benchmark harness reproducing the paper's experimental study.
//!
//! This crate glues the five benchmarks (four word-length kernels + the
//! SqueezeNet-style sensitivity benchmark) to the kriging-based hybrid
//! evaluator and the host optimizers, and regenerates every table and
//! figure of the paper:
//!
//! | artifact | binary | module |
//! |----------|--------|--------|
//! | Table I (all five benchmarks × d ∈ {2..5}) | `table1` | [`table1`] |
//! | Figure 1 (FIR noise-power surface)         | `figure1` | [`figure1`] |
//! | §IV prose: per-evaluation speed-up         | `timing` | [`timing`] |
//! | §IV prose: ≈10 % decision divergence       | `decisions` | [`decisions`] |
//! | §IV prose: `N_n,min = 2` ablation + extras | `ablation` | [`table1`] |
//!
//! Criterion micro-benchmarks live in `benches/`.
//!
//! Every experiment is available at two scales: [`Scale::Fast`] (seconds,
//! used by tests and CI) and [`Scale::Paper`] (the sizes the paper reports,
//! minutes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decisions;
pub mod figure1;
pub mod table1;
pub mod timing;

// The benchmark suite and the `Scale` knob moved into `krigeval-engine`
// (the campaign engine needs them without depending on this crate); they
// are re-exported here so existing callers keep compiling unchanged.
pub use krigeval_engine::{suite, Scale};
