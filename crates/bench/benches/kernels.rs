//! Criterion benchmarks of one simulation-based metric evaluation per
//! benchmark — the `t_o · N_o` cost kriging amortizes (paper Eq. 2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use krigeval_kernels::fft::FftBenchmark;
use krigeval_kernels::fir::FirBenchmark;
use krigeval_kernels::hevc::HevcMcBenchmark;
use krigeval_kernels::iir::IirBenchmark;
use krigeval_kernels::WordLengthBenchmark;
use krigeval_neural::SensitivityBenchmark;

fn bench_simulations(c: &mut Criterion) {
    let fir = FirBenchmark::new(64, 0.2, 512, 1);
    c.bench_function("sim_fir64_512samples", |b| {
        b.iter(|| black_box(fir.noise_power(black_box(&[10, 10])).expect("valid")))
    });

    let iir = IirBenchmark::new(8, 0.1, 512, 2);
    c.bench_function("sim_iir8_512samples", |b| {
        b.iter(|| black_box(iir.noise_power(black_box(&[10; 5])).expect("valid")))
    });

    let fft = FftBenchmark::new(8, 3);
    c.bench_function("sim_fft64_8frames", |b| {
        b.iter(|| black_box(fft.noise_power(black_box(&[10; 10])).expect("valid")))
    });

    let hevc = HevcMcBenchmark::new(48, 9, 4);
    c.bench_function("sim_hevc_9blocks", |b| {
        b.iter(|| black_box(hevc.noise_power(black_box(&[10; 23])).expect("valid")))
    });
}

fn bench_squeezenet(c: &mut Criterion) {
    let bench = SensitivityBenchmark::new(16, 12, 5);
    let powers = vec![-30.0; 10];
    c.bench_function("sim_squeezenet_16imgs", |b| {
        b.iter(|| {
            black_box(
                bench
                    .classification_rate(black_box(&powers))
                    .expect("valid"),
            )
        })
    });
}

criterion_group!(benches, bench_simulations, bench_squeezenet);
criterion_main!(benches);
