//! Criterion benchmark of the end-to-end Table I cell protocol (Fast
//! scale): the hybrid-evaluator-driven optimization of the FIR benchmark,
//! plus the headline sim-vs-krige per-evaluation comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use krigeval_bench::suite::Problem;
use krigeval_bench::table1::run_row;
use krigeval_bench::Scale;
use krigeval_core::kriging::KrigingEstimator;
use krigeval_core::VariogramModel;
use krigeval_kernels::fir::FirBenchmark;
use krigeval_kernels::WordLengthBenchmark;

fn bench_table1_fir_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("fir_cell_fast_d3", |b| {
        b.iter(|| {
            let row = run_row(Problem::Fir, Scale::Fast, 3.0, 3).expect("feasible");
            black_box(row.p_percent)
        })
    });
    group.finish();
}

/// The paper's core comparison: one simulated metric evaluation vs one
/// kriging interpolation of the same quantity.
fn bench_sim_vs_krige(c: &mut Criterion) {
    let fir = FirBenchmark::new(64, 0.2, 4096, 1);
    c.bench_function("evaluate_by_simulation", |b| {
        b.iter(|| black_box(fir.noise_power(black_box(&[10, 10])).expect("valid")))
    });

    let estimator = KrigingEstimator::new(VariogramModel::linear(3.0));
    let sites = vec![vec![9, 10], vec![11, 10], vec![10, 9], vec![10, 11]];
    let values = vec![58.0, 64.0, 55.0, 62.0];
    c.bench_function("evaluate_by_kriging", |b| {
        b.iter(|| {
            let p = estimator
                .predict_config(black_box(&sites), black_box(&values), black_box(&[10, 10]))
                .expect("solvable");
            black_box(p.value)
        })
    });
}

criterion_group!(benches, bench_table1_fir_cell, bench_sim_vs_krige);
criterion_main!(benches);
