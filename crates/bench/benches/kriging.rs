//! Criterion micro-benchmarks of the kriging engine itself: the
//! interpolation cost the paper reports as ~10⁻⁶ s per evaluation, as a
//! function of the neighbourhood size, plus variogram estimation/fitting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use krigeval_core::kriging::KrigingEstimator;
use krigeval_core::variogram::{fit_model, EmpiricalVariogram, ModelFamily, VariogramAccumulator};
use krigeval_core::{DistanceMetric, VariogramModel};

/// A deterministic cloud of `n` 10-D integer configurations with a smooth
/// metric (the FFT benchmark's dimensionality).
fn cloud(n: usize) -> (Vec<Vec<i32>>, Vec<f64>) {
    let mut configs = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let config: Vec<i32> = (0..10)
            .map(|k| 6 + (((i * (k + 3)).wrapping_mul(2654435761) >> 7) % 9) as i32)
            .collect();
        let value = config.iter().map(|&w| 6.0 * f64::from(w)).sum::<f64>() / 10.0;
        configs.push(config);
        values.push(value);
    }
    (configs, values)
}

fn bench_kriging_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("kriging_predict");
    for n in [2usize, 4, 8, 16, 32] {
        let (configs, values) = cloud(n);
        let estimator = KrigingEstimator::new(VariogramModel::linear(2.0));
        let target = vec![9; 10];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let p = estimator
                    .predict_config(black_box(&configs), black_box(&values), black_box(&target))
                    .expect("solvable system");
                black_box(p.value)
            })
        });
    }
    group.finish();
}

fn bench_variogram(c: &mut Criterion) {
    let (configs, values) = cloud(60);
    c.bench_function("empirical_variogram_60pts", |b| {
        b.iter(|| {
            let v = EmpiricalVariogram::from_configs(
                black_box(&configs),
                black_box(&values),
                DistanceMetric::L1,
            )
            .expect("non-degenerate");
            black_box(v.total_pairs())
        })
    });
    let emp = EmpiricalVariogram::from_configs(&configs, &values, DistanceMetric::L1).unwrap();
    c.bench_function("fit_model_all_families", |b| {
        b.iter(|| {
            let report = fit_model(black_box(&emp), &ModelFamily::all()).expect("fits");
            black_box(report.weighted_sse)
        })
    });
}

fn bench_incremental_variogram(c: &mut Criterion) {
    // Refitting after 5 new simulations: the accumulator folds only the
    // 5 × 60 new pairs, where a batch rebuild redoes all 65 × 64 / 2.
    let (configs, values) = cloud(65);
    let mut warm = VariogramAccumulator::new(DistanceMetric::L1);
    warm.sync(&configs[..60], &values[..60]);
    c.bench_function("variogram_refit_incremental_60plus5", |b| {
        b.iter(|| {
            // The clone restores the 60-site state each iteration; a
            // bin-map clone is tens of entries, negligible next to the
            // 5 × 60 pair folds it enables us to re-measure.
            let mut acc = black_box(&warm).clone();
            acc.sync(black_box(&configs), black_box(&values));
            let v = acc.snapshot().expect("non-degenerate");
            black_box(v.total_pairs())
        })
    });
    c.bench_function("variogram_refit_batch_65", |b| {
        b.iter(|| {
            let v = EmpiricalVariogram::from_configs(
                black_box(&configs),
                black_box(&values),
                DistanceMetric::L1,
            )
            .expect("non-degenerate");
            black_box(v.total_pairs())
        })
    });
}

fn bench_hybrid_steady_state(c: &mut Criterion) {
    use krigeval_core::{FnEvaluator, HybridEvaluator, HybridSettings, VariogramPolicy};
    // A dense seeded grid and an unseen probe: each iteration replays the
    // full kriged path (neighbour search, γ-table lookups, LDLT solve)
    // with warm buffers — the steady state the zero-allocation test pins.
    let eval = FnEvaluator::new(2, |w: &Vec<i32>| {
        let p = 1.5 * 2f64.powi(-2 * w[0]) + 0.8 * 2f64.powi(-2 * w[1]);
        Ok(-10.0 * p.log10())
    });
    let settings = HybridSettings {
        variogram: VariogramPolicy::FitAfter {
            min_samples: 30,
            families: ModelFamily::all().to_vec(),
            fallback: VariogramModel::linear(1.0),
        },
        ..HybridSettings::default()
    };
    let mut hybrid = HybridEvaluator::new(eval, settings);
    for a in 4..10 {
        for b in 4..9 {
            hybrid.evaluate(&vec![a, b]).expect("seed");
        }
    }
    assert!(hybrid.model().is_some());
    let probe = vec![10, 6];
    c.bench_function("hybrid_steady_state_kriged_evaluate", |b| {
        b.iter(|| {
            let out = hybrid.evaluate(black_box(&probe)).expect("kriged");
            black_box(out.value())
        })
    });
}

fn bench_model_eval(c: &mut Criterion) {
    let models = [
        VariogramModel::linear(1.0),
        VariogramModel::spherical(0.1, 2.0, 5.0).unwrap(),
        VariogramModel::gaussian(0.1, 2.0, 5.0).unwrap(),
    ];
    c.bench_function("variogram_model_eval_x3", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &models {
                acc += m.evaluate(black_box(3.7));
            }
            black_box(acc)
        })
    });
}

fn bench_neighbor_index(c: &mut Criterion) {
    use krigeval_core::neighbors::NeighborIndex;
    let (configs, values) = cloud(500);
    let mut index = NeighborIndex::new(DistanceMetric::L1);
    for (cfg, v) in configs.iter().zip(&values) {
        index.insert(cfg.clone(), *v);
    }
    let target = vec![9; 10];
    c.bench_function("neighbor_index_within_500pts", |b| {
        b.iter(|| black_box(index.within(black_box(&target), 4.0).len()))
    });
    c.bench_function("neighbor_linear_scan_500pts", |b| {
        b.iter(|| {
            let n = configs
                .iter()
                .filter(|cfg| DistanceMetric::L1.eval_config(cfg, black_box(&target)) <= 4.0)
                .count();
            black_box(n)
        })
    });
}

fn bench_factored_kriging(c: &mut Criterion) {
    use krigeval_core::kriging::FactoredKriging;
    let (configs, values) = cloud(24);
    let sites: Vec<Vec<f64>> = configs
        .iter()
        .map(|cfg| cfg.iter().map(|&x| f64::from(x)).collect())
        .collect();
    let fk = FactoredKriging::new(
        VariogramModel::linear(2.0),
        DistanceMetric::L1,
        sites.clone(),
        values.clone(),
    )
    .expect("solvable");
    let target: Vec<f64> = vec![9.0; 10];
    c.bench_function("factored_kriging_predict_24sites", |b| {
        b.iter(|| black_box(fk.predict(black_box(&target)).expect("solvable").value))
    });
    let estimator = KrigingEstimator::new(VariogramModel::linear(2.0));
    c.bench_function("oneshot_kriging_predict_24sites", |b| {
        b.iter(|| {
            black_box(
                estimator
                    .predict(black_box(&sites), black_box(&values), black_box(&target))
                    .expect("solvable")
                    .value,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_kriging_solve,
    bench_variogram,
    bench_incremental_variogram,
    bench_hybrid_steady_state,
    bench_model_eval,
    bench_neighbor_index,
    bench_factored_kriging
);
criterion_main!(benches);
