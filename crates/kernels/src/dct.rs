//! 8×8 2-D DCT-II benchmark (extension: not one of the paper's five).
//!
//! The type-II discrete cosine transform on 8×8 blocks is the workhorse of
//! JPEG and of H.264/HEVC residual coding — a natural companion to the
//! motion-compensation kernel, and a compact demonstration that the
//! benchmark API extends beyond the paper's set.
//!
//! Four word-lengths are optimized:
//!
//! * variable 0: row-pass multiplier (cosine product) word-length;
//! * variable 1: row-pass accumulator / intermediate word-length;
//! * variable 2: column-pass multiplier word-length;
//! * variable 3: column-pass accumulator / output word-length.

use std::f64::consts::PI;

use krigeval_fixedpoint::{NoiseMeter, NoisePower, QFormat, Quantizer};

use crate::signal::smooth_image;
use crate::{KernelError, WordLengthBenchmark};

/// Block edge length.
pub const BLOCK: usize = 8;
/// Number of word-length variables.
pub const NUM_VARIABLES: usize = 4;

/// The 8×8 2-D DCT benchmark (`Nv = 4`).
///
/// # Examples
///
/// ```
/// use krigeval_kernels::{dct::DctBenchmark, WordLengthBenchmark};
///
/// # fn main() -> Result<(), krigeval_kernels::KernelError> {
/// let dct = DctBenchmark::with_defaults();
/// assert_eq!(dct.num_variables(), 4);
/// let coarse = dct.noise_power(&[6, 6, 6, 6])?;
/// let fine = dct.noise_power(&[14, 14, 14, 14])?;
/// assert!(fine.db() < coarse.db());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DctBenchmark {
    blocks: Vec<[[f64; BLOCK]; BLOCK]>,
    references: Vec<[[f64; BLOCK]; BLOCK]>,
}

impl DctBenchmark {
    /// Paper-style configuration: 32 blocks from a smooth synthetic frame.
    pub fn with_defaults() -> DctBenchmark {
        DctBenchmark::new(32, 0xDC78_0005)
    }

    /// Builds the benchmark with `num_blocks` 8×8 blocks drawn from a
    /// smooth synthetic image seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks == 0`.
    pub fn new(num_blocks: usize, seed: u64) -> DctBenchmark {
        assert!(num_blocks > 0, "need at least one block");
        let side = 64usize;
        let image = smooth_image(seed, side, side, 6);
        let blocks: Vec<[[f64; BLOCK]; BLOCK]> = (0..num_blocks)
            .map(|i| {
                let x0 = (i * 11) % (side - BLOCK);
                let y0 = (i * 23) % (side - BLOCK);
                let mut block = [[0.0; BLOCK]; BLOCK];
                for (dy, row) in block.iter_mut().enumerate() {
                    for (dx, px) in row.iter_mut().enumerate() {
                        // Center to [-0.5, 0.5) as codecs do before the DCT.
                        *px = image[y0 + dy][x0 + dx] - 0.5;
                    }
                }
                block
            })
            .collect();
        let references = blocks
            .iter()
            .map(|b| dct_2d(b, &mut |_, v| v, &mut |_, v| v))
            .collect();
        DctBenchmark { blocks, references }
    }

    /// Number of blocks in the data set.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// DCT-II basis coefficient `c(k) · cos((2n+1)kπ/16)` with orthonormal
/// scaling, so the 2-D transform preserves energy (Parseval).
fn basis(k: usize, n: usize) -> f64 {
    let ck = if k == 0 {
        (1.0 / BLOCK as f64).sqrt()
    } else {
        (2.0 / BLOCK as f64).sqrt()
    };
    ck * ((2 * n + 1) as f64 * k as f64 * PI / (2.0 * BLOCK as f64)).cos()
}

/// Separable 2-D DCT with quantization hooks: `q_mul(pass, v)` after each
/// cosine product, `q_acc(pass, v)` after each accumulation (pass 0 = rows,
/// pass 1 = columns).
fn dct_2d(
    block: &[[f64; BLOCK]; BLOCK],
    q_mul: &mut dyn FnMut(usize, f64) -> f64,
    q_acc: &mut dyn FnMut(usize, f64) -> f64,
) -> [[f64; BLOCK]; BLOCK] {
    // Row pass.
    let mut intermediate = [[0.0; BLOCK]; BLOCK];
    for (y, row) in block.iter().enumerate() {
        for k in 0..BLOCK {
            let mut acc = 0.0;
            for (n, &px) in row.iter().enumerate() {
                let product = q_mul(0, basis(k, n) * px);
                acc = q_acc(0, acc + product);
            }
            intermediate[y][k] = acc;
        }
    }
    // Column pass.
    let mut out = [[0.0; BLOCK]; BLOCK];
    for x in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0.0;
            for (n, row) in intermediate.iter().enumerate() {
                let product = q_mul(1, basis(k, n) * row[x]);
                acc = q_acc(1, acc + product);
            }
            out[k][x] = acc;
        }
    }
    out
}

/// Double-precision reference DCT of one block.
///
/// # Examples
///
/// ```
/// use krigeval_kernels::dct::{dct_reference, BLOCK};
///
/// // The DCT of a constant block concentrates all energy in the DC bin.
/// let block = [[0.25; BLOCK]; BLOCK];
/// let spec = dct_reference(&block);
/// assert!((spec[0][0] - 0.25 * 8.0).abs() < 1e-12);
/// assert!(spec[1][1].abs() < 1e-12);
/// ```
pub fn dct_reference(block: &[[f64; BLOCK]; BLOCK]) -> [[f64; BLOCK]; BLOCK] {
    dct_2d(block, &mut |_, v| v, &mut |_, v| v)
}

impl WordLengthBenchmark for DctBenchmark {
    fn name(&self) -> &str {
        "dct8x8"
    }

    fn num_variables(&self) -> usize {
        NUM_VARIABLES
    }

    fn noise_power(&self, word_lengths: &[i32]) -> Result<NoisePower, KernelError> {
        self.validate(word_lengths)?;
        // Inputs in [-0.5, 0.5); orthonormal basis values < 0.5 ⇒ products
        // stay below 0.25 (0 integer bits); row accumulators can reach
        // √8·0.5 ≈ 1.42 and column outputs up to 8·|px| ≈ 4 in the DC bin
        // (2 integer bits of headroom).
        let q_mul_row = Quantizer::new(QFormat::with_word_length(0, word_lengths[0])?);
        let q_acc_row = Quantizer::new(QFormat::with_word_length(2, word_lengths[1])?);
        let q_mul_col = Quantizer::new(QFormat::with_word_length(0, word_lengths[2])?);
        let q_acc_col = Quantizer::new(QFormat::with_word_length(2, word_lengths[3])?);
        let mut meter = NoiseMeter::new();
        for (block, reference) in self.blocks.iter().zip(&self.references) {
            let approx = dct_2d(
                block,
                &mut |pass, v| {
                    if pass == 0 {
                        q_mul_row.quantize(v)
                    } else {
                        q_mul_col.quantize(v)
                    }
                },
                &mut |pass, v| {
                    if pass == 0 {
                        q_acc_row.quantize(v)
                    } else {
                        q_acc_col.quantize(v)
                    }
                },
            );
            for (r_row, a_row) in reference.iter().zip(&approx) {
                meter.record_slices(r_row, a_row);
            }
        }
        Ok(meter.noise_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_basis_is_orthonormal() {
        for k1 in 0..BLOCK {
            for k2 in 0..BLOCK {
                let dot: f64 = (0..BLOCK).map(|n| basis(k1, n) * basis(k2, n)).sum();
                let expected = if k1 == k2 { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-12, "k1={k1} k2={k2}: {dot}");
            }
        }
    }

    #[test]
    fn dct_preserves_energy() {
        let b = DctBenchmark::new(4, 1);
        for (block, reference) in b.blocks.iter().zip(&b.references) {
            let e_in: f64 = block.iter().flatten().map(|v| v * v).sum();
            let e_out: f64 = reference.iter().flatten().map(|v| v * v).sum();
            assert!((e_in - e_out).abs() < 1e-10, "{e_in} vs {e_out}");
        }
    }

    #[test]
    fn constant_block_is_dc_only() {
        let block = [[0.3; BLOCK]; BLOCK];
        let spec = dct_reference(&block);
        assert!((spec[0][0] - 0.3 * 8.0).abs() < 1e-12);
        for (k, row) in spec.iter().enumerate() {
            for (x, &v) in row.iter().enumerate() {
                if (k, x) != (0, 0) {
                    assert!(v.abs() < 1e-12, "bin ({k},{x}) = {v}");
                }
            }
        }
    }

    #[test]
    fn noise_decreases_with_word_length() {
        let b = DctBenchmark::new(8, 2);
        let mut prev = f64::INFINITY;
        for w in [6, 8, 10, 12, 14] {
            let db = b.noise_power(&[w; 4]).unwrap().db();
            assert!(db < prev, "w={w}: {db} !< {prev}");
            prev = db;
        }
    }

    #[test]
    fn validates_shape() {
        let b = DctBenchmark::new(4, 3);
        assert!(b.noise_power(&[8; 3]).is_err());
        assert!(b.noise_power(&[8, 8, 8, 99]).is_err());
    }

    #[test]
    fn deterministic() {
        let b = DctBenchmark::new(4, 4);
        assert_eq!(
            b.noise_power(&[9, 10, 11, 12]).unwrap().linear(),
            b.noise_power(&[9, 10, 11, 12]).unwrap().linear()
        );
    }

    #[test]
    fn column_accumulator_matters_most_at_the_output() {
        let b = DctBenchmark::new(8, 5);
        let balanced = b.noise_power(&[14, 14, 14, 14]).unwrap().db();
        let narrow_out = b.noise_power(&[14, 14, 14, 7]).unwrap().db();
        assert!(narrow_out > balanced + 6.0, "{narrow_out} vs {balanced}");
    }
}
