//! 64-point FFT benchmark (paper Table I, `Nv = 10`).
//!
//! Radix-2 decimation-in-time FFT over 64 complex points (6 butterfly
//! stages), with per-stage 1/2 scaling — the classic fixed-point FFT
//! realization that keeps every intermediate inside `(−1, 1)`.
//!
//! Ten word-lengths are optimized, matching the paper's `Nv = 10`:
//!
//! * variables 0–5: the butterfly adder/subtractor output word-length of
//!   each of the 6 stages;
//! * variables 6–9: the twiddle-multiplier output word-length of stages
//!   2–5 (stages 0 and 1 only multiply by ±1 and ∓j, which are exact).

use std::f64::consts::PI;

use krigeval_fixedpoint::{NoiseMeter, NoisePower, QFormat, Quantizer};

use crate::signal::complex_white_noise;
use crate::{KernelError, WordLengthBenchmark};

/// Number of complex points (fixed at 64, as in the paper).
pub const FFT_SIZE: usize = 64;
/// Number of butterfly stages (`log2(FFT_SIZE)`).
pub const STAGES: usize = 6;
/// Stages whose twiddle factors are non-trivial and therefore quantized.
pub const TWIDDLE_STAGES: std::ops::Range<usize> = 2..6;

/// Complex value as a `(re, im)` pair.
pub type Complex = (f64, f64);

/// The 64-point fixed-point FFT benchmark.
///
/// # Examples
///
/// ```
/// use krigeval_kernels::{fft::FftBenchmark, WordLengthBenchmark};
///
/// # fn main() -> Result<(), krigeval_kernels::KernelError> {
/// let fft = FftBenchmark::with_defaults();
/// assert_eq!(fft.num_variables(), 10);
/// let p = fft.noise_power(&[12; 10])?;
/// assert!(p.db() < -40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftBenchmark {
    frames: Vec<Vec<Complex>>,
    references: Vec<Vec<Complex>>,
}

impl FftBenchmark {
    /// Paper-faithful configuration: 64 frames of 64 complex white-noise
    /// points from a fixed seed.
    pub fn with_defaults() -> FftBenchmark {
        FftBenchmark::new(64, 0xFF7_0003)
    }

    /// Builds the benchmark with `num_frames` input frames from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames == 0`.
    pub fn new(num_frames: usize, seed: u64) -> FftBenchmark {
        assert!(num_frames > 0, "need at least one input frame");
        let frames: Vec<Vec<Complex>> = (0..num_frames)
            .map(|i| complex_white_noise(seed.wrapping_add(i as u64), FFT_SIZE, 0.95))
            .collect();
        let references = frames.iter().map(|f| fft_reference(f)).collect();
        FftBenchmark { frames, references }
    }

    /// Number of input frames in the data set.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }
}

/// Double-precision scaled FFT (the reference path): radix-2 DIT with the
/// same 1/2 per-stage scaling as the fixed-point path, so both compute
/// `X[k] / N`.
///
/// # Panics
///
/// Panics if `input.len() != FFT_SIZE`.
///
/// # Examples
///
/// ```
/// use krigeval_kernels::fft::{fft_reference, FFT_SIZE};
///
/// // FFT of a DC signal: all energy lands in bin 0 (scaled by 1/N · N = 1).
/// let dc = vec![(1.0, 0.0); FFT_SIZE];
/// let x = fft_reference(&dc);
/// assert!((x[0].0 - 1.0).abs() < 1e-12);
/// assert!(x[1..].iter().all(|(re, im)| re.abs() < 1e-12 && im.abs() < 1e-12));
/// ```
pub fn fft_reference(input: &[Complex]) -> Vec<Complex> {
    assert_eq!(input.len(), FFT_SIZE, "expected {FFT_SIZE} points");
    let mut data = bit_reverse_permute(input);
    for stage in 0..STAGES {
        run_stage(&mut data, stage, &mut |_, v| v, &mut |_, v| v);
    }
    data
}

/// Naive `O(N²)` DFT of the same scaled transform, for testing the fast path.
///
/// # Panics
///
/// Panics if `input.len() != FFT_SIZE`.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    assert_eq!(input.len(), FFT_SIZE, "expected {FFT_SIZE} points");
    let n = input.len();
    (0..n)
        .map(|k| {
            let (mut re, mut im) = (0.0, 0.0);
            for (t, &(xr, xi)) in input.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                re += xr * c - xi * s;
                im += xr * s + xi * c;
            }
            (re / n as f64, im / n as f64)
        })
        .collect()
}

fn bit_reverse_permute(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let bits = n.trailing_zeros();
    let mut out = vec![(0.0, 0.0); n];
    for (i, &v) in input.iter().enumerate() {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        out[j] = v;
    }
    out
}

/// Runs one DIT stage in place. `q_mpy(stage, v)` quantizes twiddle-product
/// components, `q_add(stage, v)` quantizes butterfly-output components; the
/// identity closures give the double-precision reference.
fn run_stage(
    data: &mut [Complex],
    stage: usize,
    q_mpy: &mut dyn FnMut(usize, f64) -> f64,
    q_add: &mut dyn FnMut(usize, f64) -> f64,
) {
    let n = data.len();
    let half = 1 << stage; // butterflies per group
    let span = half << 1; // group size
    for group in (0..n).step_by(span) {
        for k in 0..half {
            let ang = -2.0 * PI * k as f64 / span as f64;
            let (wr, wi) = (ang.cos(), ang.sin());
            let (ar, ai) = data[group + k];
            let (br, bi) = data[group + k + half];
            // Twiddle product; trivial for stages whose twiddles are ±1/∓j.
            let (tr, ti) = if stage < TWIDDLE_STAGES.start {
                // w ∈ {1, -j}: exact data moves, no rounding in hardware.
                (br * wr - bi * wi, br * wi + bi * wr)
            } else {
                (
                    q_mpy(stage, br * wr - bi * wi),
                    q_mpy(stage, br * wi + bi * wr),
                )
            };
            // Butterfly with 1/2 scaling to prevent overflow.
            data[group + k] = (q_add(stage, (ar + tr) * 0.5), q_add(stage, (ai + ti) * 0.5));
            data[group + k + half] = (q_add(stage, (ar - tr) * 0.5), q_add(stage, (ai - ti) * 0.5));
        }
    }
}

impl WordLengthBenchmark for FftBenchmark {
    fn name(&self) -> &str {
        "fft64"
    }

    fn num_variables(&self) -> usize {
        STAGES + TWIDDLE_STAGES.len()
    }

    fn noise_power(&self, word_lengths: &[i32]) -> Result<NoisePower, KernelError> {
        self.validate(word_lengths)?;
        // Scaled data stays in (−1, 1): 0 integer bits everywhere.
        let add_q: Vec<Quantizer> = (0..STAGES)
            .map(|s| {
                Ok(Quantizer::new(QFormat::with_word_length(
                    0,
                    word_lengths[s],
                )?))
            })
            .collect::<Result<_, KernelError>>()?;
        let mpy_q: Vec<Quantizer> = TWIDDLE_STAGES
            .map(|s| {
                let idx = STAGES + (s - TWIDDLE_STAGES.start);
                Ok(Quantizer::new(QFormat::with_word_length(
                    0,
                    word_lengths[idx],
                )?))
            })
            .collect::<Result<_, KernelError>>()?;
        let q_in = Quantizer::new(QFormat::new(0, 15)?);

        let mut meter = NoiseMeter::new();
        for (frame, reference) in self.frames.iter().zip(&self.references) {
            let quantized_input: Vec<Complex> = frame
                .iter()
                .map(|&(re, im)| (q_in.quantize(re), q_in.quantize(im)))
                .collect();
            let mut data = bit_reverse_permute(&quantized_input);
            for stage in 0..STAGES {
                run_stage(
                    &mut data,
                    stage,
                    &mut |s, v| mpy_q[s - TWIDDLE_STAGES.start].quantize(v),
                    &mut |s, v| add_q[s].quantize(v),
                );
            }
            for (&(fr, fi), &(rr, ri)) in data.iter().zip(reference) {
                meter.record(rr, fr);
                meter.record(ri, fi);
            }
        }
        Ok(meter.noise_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FftBenchmark {
        FftBenchmark::new(8, 0xFF7_0003)
    }

    #[test]
    fn fft_matches_naive_dft() {
        let x = complex_white_noise(99, FFT_SIZE, 0.9);
        let fast = fft_reference(&x);
        let slow = dft_naive(&x);
        for ((fr, fi), (sr, si)) in fast.iter().zip(&slow) {
            assert!((fr - sr).abs() < 1e-10 && (fi - si).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![(0.0, 0.0); FFT_SIZE];
        x[0] = (1.0, 0.0);
        let spec = fft_reference(&x);
        for (re, im) in spec {
            assert!((re - 1.0 / FFT_SIZE as f64).abs() < 1e-12);
            assert!(im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_holds_for_scaled_transform() {
        // For X[k] = (1/N)·Σ x e^{-j...}: Σ|x|²/N = Σ|X|²·N/N = N·Σ|X|².
        let x = complex_white_noise(5, FFT_SIZE, 0.9);
        let spec = fft_reference(&x);
        let ex: f64 = x.iter().map(|(r, i)| r * r + i * i).sum();
        let es: f64 = spec.iter().map(|(r, i)| r * r + i * i).sum();
        assert!((ex / FFT_SIZE as f64 - es).abs() < 1e-10, "{ex} vs {es}");
    }

    #[test]
    fn has_ten_variables() {
        assert_eq!(small().num_variables(), 10);
    }

    #[test]
    fn noise_decreases_with_word_length() {
        let b = small();
        let mut prev = f64::INFINITY;
        for w in [6, 8, 10, 12, 14] {
            let db = b.noise_power(&[w; 10]).unwrap().db();
            assert!(db < prev, "w={w}: {db} !< {prev}");
            prev = db;
        }
    }

    #[test]
    fn late_stage_quantization_hurts_more() {
        // Noise injected at stage 5 hits the output directly; stage-0 noise
        // is attenuated by five subsequent 1/2 scalings.
        let b = small();
        let narrow_first = b
            .noise_power(&[8, 14, 14, 14, 14, 14, 14, 14, 14, 14])
            .unwrap();
        let narrow_last = b
            .noise_power(&[14, 14, 14, 14, 14, 8, 14, 14, 14, 14])
            .unwrap();
        assert!(
            narrow_last.db() > narrow_first.db(),
            "first {} dB, last {} dB",
            narrow_first.db(),
            narrow_last.db()
        );
    }

    #[test]
    fn validates_shape() {
        let b = small();
        assert!(b.noise_power(&[12; 9]).is_err());
        assert!(b.noise_power(&[12; 11]).is_err());
    }

    #[test]
    fn deterministic() {
        let b = small();
        let w = [9, 10, 11, 12, 13, 9, 10, 11, 12, 13];
        assert_eq!(
            b.noise_power(&w).unwrap().linear(),
            b.noise_power(&w).unwrap().linear()
        );
    }

    #[test]
    fn bit_reverse_is_an_involution() {
        let x = complex_white_noise(7, FFT_SIZE, 1.0);
        let once = bit_reverse_permute(&x);
        let twice = bit_reverse_permute(&once);
        assert_eq!(x, twice);
    }
}
