//! 64-tap FIR benchmark (paper Table I, `Nv = 2`).
//!
//! The paper instruments exactly two word-lengths in this kernel: "the
//! word-length at the output of the adder and the word-length at the output
//! of the multiplier" (Section IV, Figure 1). The fixed-point path computes
//!
//! ```text
//! acc ← Q_add( acc + Q_mpy( h[k] · x[n−k] ) )      k = 0..63
//! ```
//!
//! and the output noise power is measured against the double-precision
//! convolution over the same input data set.

use krigeval_fixedpoint::{NoisePower, QFormat, Quantizer};

use crate::filter_design::lowpass_fir;
use crate::signal::white_noise;
use crate::{KernelError, WordLengthBenchmark};

/// Index of the adder-output word-length in the configuration vector.
pub const VAR_ADD: usize = 0;
/// Index of the multiplier-output word-length in the configuration vector.
pub const VAR_MPY: usize = 1;

/// The 64-tap low-pass FIR benchmark.
///
/// # Examples
///
/// ```
/// use krigeval_kernels::{fir::FirBenchmark, WordLengthBenchmark};
///
/// # fn main() -> Result<(), krigeval_kernels::KernelError> {
/// let fir = FirBenchmark::with_defaults();
/// let p = fir.noise_power(&[12, 10])?; // [w_add, w_mpy]
/// assert!(p.db() < -30.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FirBenchmark {
    taps: Vec<f64>,
    input: Vec<f64>,
    reference: Vec<f64>,
}

impl FirBenchmark {
    /// Paper-faithful configuration: 64 taps, cutoff 0.2, 4096 white-noise
    /// input samples from a fixed seed.
    pub fn with_defaults() -> FirBenchmark {
        FirBenchmark::new(64, 0.2, 4096, 0xF1E6_4001)
    }

    /// Builds a FIR benchmark with `taps` coefficients, normalized `cutoff`,
    /// and `samples` white-noise input samples generated from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `taps == 0`, `cutoff` is outside `(0, 0.5)`, or
    /// `samples == 0` (propagated from the designers/generators).
    pub fn new(taps: usize, cutoff: f64, samples: usize, seed: u64) -> FirBenchmark {
        assert!(samples > 0, "need at least one input sample");
        let taps = lowpass_fir(taps, cutoff);
        let input = white_noise(seed, samples, 0.95);
        let reference = convolve(&taps, &input);
        FirBenchmark {
            taps,
            input,
            reference,
        }
    }

    /// The filter coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Number of input samples in the data set.
    pub fn num_samples(&self) -> usize {
        self.input.len()
    }
}

fn convolve(taps: &[f64], input: &[f64]) -> Vec<f64> {
    (0..input.len())
        .map(|n| {
            taps.iter()
                .enumerate()
                .filter(|(k, _)| *k <= n)
                .map(|(k, h)| h * input[n - k])
                .sum()
        })
        .collect()
}

impl WordLengthBenchmark for FirBenchmark {
    fn name(&self) -> &str {
        "fir64"
    }

    fn num_variables(&self) -> usize {
        2
    }

    fn noise_power(&self, word_lengths: &[i32]) -> Result<NoisePower, KernelError> {
        self.validate(word_lengths)?;
        // Products of Q0.x data and sub-unit taps stay in (−1, 1): 0 integer
        // bits. The accumulator needs headroom for Σ|h| ≈ 1.2: 1 integer bit.
        let q_add = Quantizer::new(QFormat::with_word_length(1, word_lengths[VAR_ADD])?);
        let q_mpy = Quantizer::new(QFormat::with_word_length(0, word_lengths[VAR_MPY])?);
        // Inputs and coefficients are pre-quantized to a generous fixed
        // format (Q0.15) exactly as a 16-bit front-end would deliver them;
        // the optimization variables are the *internal* word-lengths only.
        let q_in = Quantizer::new(QFormat::new(0, 15)?);
        let taps_fx = q_in.quantize_slice(&self.taps);
        let input_fx = q_in.quantize_slice(&self.input);

        let mut meter = krigeval_fixedpoint::NoiseMeter::new();
        for n in 0..input_fx.len() {
            let mut acc = 0.0;
            for (k, h) in taps_fx.iter().enumerate() {
                if k > n {
                    break;
                }
                let product = q_mpy.quantize(h * input_fx[n - k]);
                acc = q_add.quantize(acc + product);
            }
            meter.record(self.reference[n], acc);
        }
        Ok(meter.noise_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FirBenchmark {
        FirBenchmark::new(64, 0.2, 512, 0xF1E6_4001)
    }

    #[test]
    fn validates_configuration_shape() {
        let f = small();
        assert!(f.noise_power(&[8]).is_err());
        assert!(f.noise_power(&[8, 8, 8]).is_err());
        assert!(f.noise_power(&[1, 8]).is_err());
        assert!(f.noise_power(&[8, 20]).is_err());
    }

    #[test]
    fn noise_decreases_with_word_length() {
        let f = small();
        let mut prev_db = f64::INFINITY;
        for w in [4, 6, 8, 10, 12, 14] {
            let db = f.noise_power(&[w, w]).unwrap().db();
            assert!(db < prev_db, "w={w}: {db} !< {prev_db}");
            prev_db = db;
        }
    }

    #[test]
    fn each_extra_bit_buys_about_six_db() {
        let f = small();
        let d8 = f.noise_power(&[8, 8]).unwrap().db();
        let d12 = f.noise_power(&[12, 12]).unwrap().db();
        let per_bit = (d8 - d12) / 4.0;
        assert!(
            (4.0..8.0).contains(&per_bit),
            "per-bit improvement {per_bit} dB"
        );
    }

    #[test]
    fn narrowest_stage_limits_the_noise() {
        // An imbalanced configuration is limited by its narrowest stage and
        // must be noisier than the balanced wide configuration.
        let f = small();
        let narrow_mpy = f.noise_power(&[14, 6]).unwrap().db();
        let narrow_add = f.noise_power(&[6, 14]).unwrap().db();
        let balanced = f.noise_power(&[14, 14]).unwrap().db();
        assert!(narrow_mpy > balanced + 6.0, "{narrow_mpy} vs {balanced}");
        assert!(narrow_add > balanced + 6.0, "{narrow_add} vs {balanced}");
    }

    #[test]
    fn deterministic_across_calls() {
        let f = small();
        let a = f.noise_power(&[9, 7]).unwrap();
        let b = f.noise_power(&[9, 7]).unwrap();
        assert_eq!(a.linear(), b.linear());
    }

    #[test]
    fn accuracy_db_monotone() {
        let f = small();
        assert!(f.accuracy_db(&[12, 12]).unwrap() > f.accuracy_db(&[6, 6]).unwrap());
    }

    #[test]
    fn reference_matches_naive_convolution_start() {
        let f = small();
        // y[0] = h[0]·x[0].
        assert!((f.reference[0] - f.taps[0] * f.input[0]).abs() < 1e-15);
    }

    #[test]
    fn simulated_noise_matches_additive_model() {
        // Linear-noise model: each of the 64 product quantizations injects
        // q_mpy²/12 (filtered by unit gain to the output), and each of the
        // 64 accumulator quantizations injects q_add²/12. With rounding
        // quantizers and white inputs the measured power should land within
        // a factor ~2 (±3 dB) of the model — the classic sanity check of
        // fixed-point noise analysis.
        // The independent-uniform-source model is only an order-of-magnitude
        // guide here: (a) most tap products are *smaller* than the product
        // quantization step, so their error variance is below q²/12; (b) the
        // 64 accumulator requantizations have discrete, tie-biased errors
        // that partially add coherently. Measured-to-model ratios between
        // 0.1 and 10 are the realistic envelope — the check still catches
        // any order-of-magnitude regression in the simulation path.
        let f = FirBenchmark::new(64, 0.2, 4096, 0xF1E6_4001);
        for (w_add, w_mpy) in [(8, 8), (10, 8), (8, 10), (12, 12)] {
            let measured = f.noise_power(&[w_add, w_mpy]).unwrap().linear();
            let q_add = QFormat::with_word_length(1, w_add).unwrap().step();
            let q_mpy = QFormat::with_word_length(0, w_mpy).unwrap().step();
            let model = 64.0 * (q_add * q_add + q_mpy * q_mpy) / 12.0;
            let ratio = measured / model;
            assert!(
                (0.1..10.0).contains(&ratio),
                "w=({w_add},{w_mpy}): measured {measured:e}, model {model:e}, ratio {ratio}"
            );
        }
    }

    #[test]
    fn max_word_length_config_is_nearly_exact() {
        let f = small();
        let p = f.noise_power(&[16, 16]).unwrap();
        // Only the 16-bit internal rounding remains; power must be tiny.
        assert!(p.db() < -60.0, "got {}", p.db());
    }
}
