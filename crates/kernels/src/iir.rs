//! 8th-order IIR benchmark (paper Table I, `Nv = 5`).
//!
//! The filter is a cascade of four Butterworth biquads. Five word-lengths
//! are optimized, matching the paper's variable count:
//!
//! * variables 0–3: the internal accumulator/output word-length of each
//!   biquad section (one per section — in a cascade realization each
//!   section's output register is the natural quantization site);
//! * variable 4: the word-length of the final output register.
//!
//! Recursive structures accumulate and *recirculate* quantization noise, so
//! this benchmark exhibits the strongest coupling between variables — the
//! paper observes that its interpolable fraction is the lowest of the large
//! benchmarks.

use krigeval_fixedpoint::{NoiseMeter, NoisePower, QFormat, Quantizer};

use crate::filter_design::{butterworth_lowpass, Biquad};
use crate::signal::white_noise;
use crate::{KernelError, WordLengthBenchmark};

/// The 8th-order cascaded-biquad IIR benchmark.
///
/// # Examples
///
/// ```
/// use krigeval_kernels::{iir::IirBenchmark, WordLengthBenchmark};
///
/// # fn main() -> Result<(), krigeval_kernels::KernelError> {
/// let iir = IirBenchmark::with_defaults();
/// assert_eq!(iir.num_variables(), 5);
/// let p = iir.noise_power(&[12, 12, 12, 12, 12])?;
/// assert!(p.db() < -30.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IirBenchmark {
    sections: Vec<Biquad>,
    input: Vec<f64>,
    reference: Vec<f64>,
}

impl IirBenchmark {
    /// Paper-faithful configuration: 8th-order Butterworth low-pass at
    /// cutoff 0.1, 4096 white-noise samples from a fixed seed.
    pub fn with_defaults() -> IirBenchmark {
        IirBenchmark::new(8, 0.1, 4096, 0x11E8_0002)
    }

    /// Builds an IIR benchmark of even `order` with `samples` white-noise
    /// input samples from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero or odd, `cutoff` is outside `(0, 0.5)`, or
    /// `samples == 0`.
    pub fn new(order: usize, cutoff: f64, samples: usize, seed: u64) -> IirBenchmark {
        assert!(samples > 0, "need at least one input sample");
        let sections = butterworth_lowpass(order, cutoff);
        let input = white_noise(seed, samples, 0.95);
        let mut reference = input.clone();
        for s in &sections {
            reference = s.filter(&reference);
        }
        IirBenchmark {
            sections,
            input,
            reference,
        }
    }

    /// The biquad sections of the cascade.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }
}

impl WordLengthBenchmark for IirBenchmark {
    fn name(&self) -> &str {
        "iir8"
    }

    fn num_variables(&self) -> usize {
        self.sections.len() + 1
    }

    fn noise_power(&self, word_lengths: &[i32]) -> Result<NoisePower, KernelError> {
        self.validate(word_lengths)?;
        // Butterworth low-pass sections have bounded gain; 2 integer bits of
        // headroom cover the transient peaking of early sections.
        let section_q: Vec<Quantizer> = word_lengths[..self.sections.len()]
            .iter()
            .map(|&w| Ok(Quantizer::new(QFormat::with_word_length(2, w)?)))
            .collect::<Result<_, KernelError>>()?;
        let out_q = Quantizer::new(QFormat::with_word_length(
            0,
            word_lengths[self.sections.len()],
        )?);

        // Direct-form-I state per section, all quantized at the section's
        // output register (the classic cascade realization).
        let mut x1 = vec![0.0; self.sections.len()];
        let mut x2 = vec![0.0; self.sections.len()];
        let mut y1 = vec![0.0; self.sections.len()];
        let mut y2 = vec![0.0; self.sections.len()];

        let mut meter = NoiseMeter::new();
        for (n, &sample) in self.input.iter().enumerate() {
            let mut v = sample;
            for (i, s) in self.sections.iter().enumerate() {
                let y =
                    s.b[0] * v + s.b[1] * x1[i] + s.b[2] * x2[i] - s.a[0] * y1[i] - s.a[1] * y2[i];
                let y = section_q[i].quantize(y);
                x2[i] = x1[i];
                x1[i] = v;
                y2[i] = y1[i];
                y1[i] = y;
                v = y;
            }
            let out = out_q.quantize(v);
            meter.record(self.reference[n], out);
        }
        Ok(meter.noise_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> IirBenchmark {
        IirBenchmark::new(8, 0.1, 1024, 0x11E8_0002)
    }

    #[test]
    fn has_five_variables() {
        assert_eq!(small().num_variables(), 5);
    }

    #[test]
    fn validates_shape_and_range() {
        let b = small();
        assert!(b.noise_power(&[8; 4]).is_err());
        assert!(b.noise_power(&[8, 8, 8, 8, 1]).is_err());
    }

    #[test]
    fn noise_decreases_with_word_length() {
        let b = small();
        let mut prev = f64::INFINITY;
        for w in [6, 8, 10, 12, 14] {
            let db = b.noise_power(&[w; 5]).unwrap().db();
            assert!(db < prev, "w={w}: {db} !< {prev}");
            prev = db;
        }
    }

    #[test]
    fn narrowing_any_single_register_is_worse_than_balanced_wide() {
        // Recursive noise recirculation means a single narrow register
        // dominates the whole cascade's output noise.
        let b = small();
        let balanced = b.noise_power(&[14; 5]).unwrap().db();
        for i in 0..5 {
            let mut w = [14; 5];
            w[i] = 8;
            let narrowed = b.noise_power(&w).unwrap().db();
            assert!(
                narrowed > balanced + 3.0,
                "register {i}: {narrowed} dB vs balanced {balanced} dB"
            );
        }
    }

    #[test]
    fn reference_is_bounded() {
        // Stable filter, bounded input → bounded output.
        let b = small();
        assert!(b.reference.iter().all(|v| v.abs() < 4.0));
    }

    #[test]
    fn deterministic() {
        let b = small();
        assert_eq!(
            b.noise_power(&[9, 10, 11, 12, 13]).unwrap().linear(),
            b.noise_power(&[9, 10, 11, 12, 13]).unwrap().linear()
        );
    }

    #[test]
    fn cascade_matches_sections_applied_sequentially() {
        let b = small();
        let mut manual = b.input.clone();
        for s in b.sections() {
            manual = s.filter(&manual);
        }
        for (m, r) in manual.iter().zip(&b.reference) {
            assert!((m - r).abs() < 1e-12);
        }
    }
}
