//! The common interface every word-length benchmark implements.

use krigeval_fixedpoint::NoisePower;

use crate::KernelError;

/// A fixed-point benchmark whose internal word-lengths are the optimization
/// variables of the paper's DSE problem (Eq. 1).
///
/// A configuration is a vector `w` of **total** word-lengths (sign plus
/// integer plus fractional bits) — one entry per instrumented internal
/// variable. The integer parts are fixed per site by dynamic-range
/// analysis, so growing `w[i]` adds fractional bits, monotonically (in
/// expectation) reducing the output noise power.
///
/// The paper's accuracy metric for these benchmarks is `λ = −P`; this trait
/// reports `P` itself (see [`WordLengthBenchmark::accuracy_db`] for the
/// ready-made `λ` in dB used by the optimizers).
pub trait WordLengthBenchmark {
    /// Human-readable benchmark name (e.g. `"fir64"`).
    fn name(&self) -> &str;

    /// Number of word-length variables `Nv`.
    fn num_variables(&self) -> usize;

    /// Smallest meaningful word-length (defaults to 2: sign + one data bit).
    fn min_word_length(&self) -> i32 {
        2
    }

    /// Largest word-length the optimizer may try — the paper's `N_max`
    /// (defaults to 16, the classic DSP word size).
    fn max_word_length(&self) -> i32 {
        16
    }

    /// Simulates the configuration `w` against the double-precision
    /// reference on the benchmark's input data set and returns the output
    /// noise power.
    ///
    /// # Errors
    ///
    /// * [`KernelError::WrongVariableCount`] if `w.len() != num_variables()`.
    /// * [`KernelError::WordLengthOutOfRange`] if an entry leaves
    ///   `[min_word_length(), max_word_length()]`.
    fn noise_power(&self, word_lengths: &[i32]) -> Result<NoisePower, KernelError>;

    /// The accuracy metric `λ` handed to the optimizer: the opposite of the
    /// noise power, expressed in dB (`λ = −10·log₁₀ P`). Larger is better.
    ///
    /// Bit-exact outputs are clamped to `λ = 300` (i.e. −300 dB of noise) so
    /// that the metric stays finite for kriging.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WordLengthBenchmark::noise_power`].
    fn accuracy_db(&self, word_lengths: &[i32]) -> Result<f64, KernelError> {
        let p = self.noise_power(word_lengths)?;
        if p.is_zero() {
            Ok(300.0)
        } else {
            Ok((-p.db()).min(300.0))
        }
    }

    /// Validates a configuration vector shape and range. Implementations
    /// call this at the top of [`WordLengthBenchmark::noise_power`].
    ///
    /// # Errors
    ///
    /// See [`WordLengthBenchmark::noise_power`].
    fn validate(&self, word_lengths: &[i32]) -> Result<(), KernelError> {
        if word_lengths.len() != self.num_variables() {
            return Err(KernelError::WrongVariableCount {
                expected: self.num_variables(),
                actual: word_lengths.len(),
            });
        }
        let (min, max) = (self.min_word_length(), self.max_word_length());
        for (index, &word_length) in word_lengths.iter().enumerate() {
            if word_length < min || word_length > max {
                return Err(KernelError::WordLengthOutOfRange {
                    index,
                    word_length,
                    min,
                    max,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krigeval_fixedpoint::NoisePower;

    struct Dummy;

    impl WordLengthBenchmark for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn num_variables(&self) -> usize {
            3
        }
        fn noise_power(&self, w: &[i32]) -> Result<NoisePower, KernelError> {
            self.validate(w)?;
            let bits: i32 = w.iter().sum();
            Ok(NoisePower::from_equivalent_bits(bits as f64))
        }
    }

    #[test]
    fn validate_rejects_wrong_count() {
        assert!(matches!(
            Dummy.noise_power(&[8, 8]).unwrap_err(),
            KernelError::WrongVariableCount {
                expected: 3,
                actual: 2
            }
        ));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        assert!(matches!(
            Dummy.noise_power(&[8, 1, 8]).unwrap_err(),
            KernelError::WordLengthOutOfRange { index: 1, .. }
        ));
        assert!(matches!(
            Dummy.noise_power(&[8, 8, 17]).unwrap_err(),
            KernelError::WordLengthOutOfRange { index: 2, .. }
        ));
    }

    #[test]
    fn accuracy_db_is_opposite_of_power_db() {
        let p = Dummy.noise_power(&[8, 8, 8]).unwrap();
        let acc = Dummy.accuracy_db(&[8, 8, 8]).unwrap();
        assert!((acc + p.db()).abs() < 1e-12);
    }

    #[test]
    fn accuracy_db_clamps_zero_power() {
        struct Exact;
        impl WordLengthBenchmark for Exact {
            fn name(&self) -> &str {
                "exact"
            }
            fn num_variables(&self) -> usize {
                1
            }
            fn noise_power(&self, _: &[i32]) -> Result<NoisePower, KernelError> {
                Ok(NoisePower::from_linear(0.0))
            }
        }
        assert_eq!(Exact.accuracy_db(&[8]).unwrap(), 300.0);
    }
}
