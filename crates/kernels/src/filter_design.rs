//! Filter design helpers: windowed-sinc FIR taps and Butterworth biquads.
//!
//! The paper's FIR and IIR benchmarks are "classical signal processing
//! kernels"; we synthesize their coefficients analytically so the repository
//! carries no opaque data tables.

use std::f64::consts::PI;

/// Designs a linear-phase low-pass FIR filter with `taps` coefficients using
/// the windowed-sinc method with a Hamming window.
///
/// `cutoff` is the normalized cutoff frequency in cycles/sample
/// (`0 < cutoff < 0.5`). The taps are normalized to unit DC gain.
///
/// # Panics
///
/// Panics if `taps == 0` or `cutoff` is outside `(0, 0.5)`.
///
/// # Examples
///
/// ```
/// let h = krigeval_kernels::filter_design::lowpass_fir(64, 0.2);
/// assert_eq!(h.len(), 64);
/// // Unit DC gain.
/// let dc: f64 = h.iter().sum();
/// assert!((dc - 1.0).abs() < 1e-12);
/// ```
pub fn lowpass_fir(taps: usize, cutoff: f64) -> Vec<f64> {
    assert!(taps > 0, "taps must be positive");
    assert!(
        cutoff > 0.0 && cutoff < 0.5,
        "cutoff must be in (0, 0.5), got {cutoff}"
    );
    let m = (taps - 1) as f64;
    let mut h: Vec<f64> = (0..taps)
        .map(|n| {
            let x = n as f64 - m / 2.0;
            let sinc = if x == 0.0 {
                2.0 * cutoff
            } else {
                (2.0 * PI * cutoff * x).sin() / (PI * x)
            };
            let window = 0.54 - 0.46 * (2.0 * PI * n as f64 / m).cos();
            sinc * window
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// One second-order IIR section `y[n] = b0·x[n] + b1·x[n−1] + b2·x[n−2]
/// − a1·y[n−1] − a2·y[n−2]` (the leading denominator coefficient `a0` is
/// normalized to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients `b0, b1, b2`.
    pub b: [f64; 3],
    /// Feedback coefficients `a1, a2` (with `a0 = 1` implicit).
    pub a: [f64; 2],
}

impl Biquad {
    /// `true` if both poles lie strictly inside the unit circle
    /// (triangle stability criterion `|a2| < 1 ∧ |a1| < 1 + a2`).
    pub fn is_stable(&self) -> bool {
        self.a[1].abs() < 1.0 && self.a[0].abs() < 1.0 + self.a[1]
    }

    /// Runs the section over `input` in double precision (direct form I).
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut x1 = 0.0;
        let mut x2 = 0.0;
        let mut y1 = 0.0;
        let mut y2 = 0.0;
        input
            .iter()
            .map(|&x| {
                let y = self.b[0] * x + self.b[1] * x1 + self.b[2] * x2
                    - self.a[0] * y1
                    - self.a[1] * y2;
                x2 = x1;
                x1 = x;
                y2 = y1;
                y1 = y;
                y
            })
            .collect()
    }

    /// Magnitude response at normalized frequency `f` (cycles/sample).
    pub fn magnitude(&self, f: f64) -> f64 {
        let w = 2.0 * PI * f;
        let num = complex_poly(&[self.b[0], self.b[1], self.b[2]], w);
        let den = complex_poly(&[1.0, self.a[0], self.a[1]], w);
        (num.0 * num.0 + num.1 * num.1).sqrt() / (den.0 * den.0 + den.1 * den.1).sqrt()
    }
}

fn complex_poly(coeffs: &[f64], w: f64) -> (f64, f64) {
    // Evaluate Σ c_k e^{-jkw}.
    let mut re = 0.0;
    let mut im = 0.0;
    for (k, c) in coeffs.iter().enumerate() {
        re += c * (w * k as f64).cos();
        im -= c * (w * k as f64).sin();
    }
    (re, im)
}

/// Designs a low-pass Butterworth filter of even order `order` as a cascade
/// of `order / 2` biquads via the bilinear transform.
///
/// `cutoff` is the normalized cutoff frequency in cycles/sample
/// (`0 < cutoff < 0.5`). Each section is normalized to unit DC gain so the
/// cascade's DC gain is exactly 1 — convenient for fixed-point scaling.
///
/// # Panics
///
/// Panics if `order` is zero or odd, or `cutoff` is outside `(0, 0.5)`.
///
/// # Examples
///
/// ```
/// let sections = krigeval_kernels::filter_design::butterworth_lowpass(8, 0.1);
/// assert_eq!(sections.len(), 4);
/// assert!(sections.iter().all(|s| s.is_stable()));
/// ```
pub fn butterworth_lowpass(order: usize, cutoff: f64) -> Vec<Biquad> {
    assert!(
        order > 0 && order.is_multiple_of(2),
        "order must be even and positive"
    );
    assert!(
        cutoff > 0.0 && cutoff < 0.5,
        "cutoff must be in (0, 0.5), got {cutoff}"
    );
    // Pre-warped analog cutoff for the bilinear transform (T = 1).
    let warped = (PI * cutoff).tan();
    let n = order as f64;
    (0..order / 2)
        .map(|k| {
            // Analog Butterworth pole pair angle.
            let theta = PI * (2.0 * k as f64 + 1.0) / (2.0 * n) + PI / 2.0;
            // Analog prototype s² + 2·ζ·s + 1 with ζ = −cos(θ).
            let zeta = -theta.cos();
            // Bilinear transform of s² + 2ζ·ω·s + ω² (ω = warped):
            let w2 = warped * warped;
            let a0 = 1.0 + 2.0 * zeta * warped + w2;
            let a1 = 2.0 * (w2 - 1.0) / a0;
            let a2 = (1.0 - 2.0 * zeta * warped + w2) / a0;
            let gain = w2 / a0;
            Biquad {
                b: [gain, 2.0 * gain, gain],
                a: [a1, a2],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_is_symmetric_linear_phase() {
        let h = lowpass_fir(64, 0.2);
        for i in 0..32 {
            assert!(
                (h[i] - h[63 - i]).abs() < 1e-12,
                "tap {i} asymmetric: {} vs {}",
                h[i],
                h[63 - i]
            );
        }
    }

    #[test]
    fn fir_passband_and_stopband() {
        let h = lowpass_fir(64, 0.2);
        let mag = |f: f64| -> f64 {
            let (mut re, mut im) = (0.0, 0.0);
            for (n, c) in h.iter().enumerate() {
                re += c * (2.0 * PI * f * n as f64).cos();
                im -= c * (2.0 * PI * f * n as f64).sin();
            }
            (re * re + im * im).sqrt()
        };
        assert!((mag(0.0) - 1.0).abs() < 1e-12);
        assert!(mag(0.05) > 0.95, "passband droop: {}", mag(0.05));
        assert!(mag(0.35) < 0.01, "stopband leak: {}", mag(0.35));
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn fir_rejects_bad_cutoff() {
        let _ = lowpass_fir(8, 0.7);
    }

    #[test]
    fn butterworth_sections_are_stable() {
        for order in [2, 4, 8] {
            for cutoff in [0.05, 0.1, 0.25, 0.4] {
                for s in butterworth_lowpass(order, cutoff) {
                    assert!(s.is_stable(), "order {order} cutoff {cutoff}: {s:?}");
                }
            }
        }
    }

    #[test]
    fn butterworth_dc_gain_is_unity() {
        for s in butterworth_lowpass(8, 0.1) {
            assert!((s.magnitude(0.0) - 1.0).abs() < 1e-9, "{s:?}");
        }
    }

    #[test]
    fn butterworth_cutoff_is_minus_3db() {
        let sections = butterworth_lowpass(8, 0.1);
        let total: f64 = sections.iter().map(|s| s.magnitude(0.1)).product();
        let db = 20.0 * total.log10();
        assert!((db + 3.01).abs() < 0.1, "cutoff gain {db} dB");
    }

    #[test]
    fn butterworth_is_monotone_lowpass() {
        let sections = butterworth_lowpass(8, 0.1);
        let total = |f: f64| -> f64 { sections.iter().map(|s| s.magnitude(f)).product() };
        let mut prev = total(0.0);
        for i in 1..50 {
            let cur = total(0.5 * i as f64 / 50.0);
            assert!(cur <= prev + 1e-9, "non-monotone at bin {i}");
            prev = cur;
        }
        assert!(total(0.4) < 1e-4, "stopband too high: {}", total(0.4));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn butterworth_rejects_odd_order() {
        let _ = butterworth_lowpass(3, 0.1);
    }

    #[test]
    fn biquad_impulse_response_matches_difference_equation() {
        let s = Biquad {
            b: [0.5, 0.2, 0.1],
            a: [-0.3, 0.4],
        };
        let mut impulse = vec![0.0; 8];
        impulse[0] = 1.0;
        let y = s.filter(&impulse);
        // Hand-unrolled: y0 = b0; y1 = b1 - a1·y0; y2 = b2 - a1·y1 - a2·y0.
        assert!((y[0] - 0.5).abs() < 1e-15);
        assert!((y[1] - (0.2 + 0.3 * 0.5)).abs() < 1e-15);
        assert!((y[2] - (0.1 + 0.3 * y[1] - 0.4 * 0.5)).abs() < 1e-15);
    }

    #[test]
    fn unstable_biquad_detected() {
        let s = Biquad {
            b: [1.0, 0.0, 0.0],
            a: [0.0, 1.1],
        };
        assert!(!s.is_stable());
    }
}
