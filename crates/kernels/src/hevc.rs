//! HEVC motion-compensation benchmark (paper Table I, `Nv = 23`).
//!
//! The paper's fourth benchmark is "the 2-D motion compensation module of an
//! HEVC codec", processing 8×8 pixel blocks with the standard's separable
//! 8-tap fractional-pel interpolation filters, with **23 variables** in the
//! word-length optimization.
//!
//! We rebuild that module from the HEVC luma filter definition (the actual
//! HM reference software is a substitution documented in `DESIGN.md`):
//! quarter/half/three-quarter-pel 8-tap filters applied horizontally then
//! vertically, on smooth synthetic image content. The 23 instrumented
//! word-length sites are:
//!
//! | index | site |
//! |-------|------|
//! | 0–7   | horizontal tap products |
//! | 8     | horizontal accumulator |
//! | 9     | horizontal intermediate row output |
//! | 10–17 | vertical tap products |
//! | 18    | vertical accumulator |
//! | 19    | vertical (2-D path) output |
//! | 20    | horizontal-only path output (`dy = 0`) |
//! | 21    | vertical-only path output (`dx = 0`) |
//! | 22    | final output register (all paths) |

use krigeval_fixedpoint::{NoiseMeter, NoisePower, QFormat, Quantizer};

use crate::signal::smooth_image;
use crate::{KernelError, WordLengthBenchmark};

/// Number of instrumented word-length sites.
pub const NUM_VARIABLES: usize = 23;
/// Block edge length in pixels.
pub const BLOCK: usize = 8;
/// Filter length.
pub const TAPS: usize = 8;

/// HEVC luma interpolation filter coefficients (×1/64) for quarter-pel
/// phases 1–3 (phase 0 is the integer-pel identity).
pub const LUMA_FILTERS: [[f64; TAPS]; 3] = [
    // phase 1 (quarter-pel)
    [-1.0, 4.0, -10.0, 58.0, 17.0, -5.0, 1.0, 0.0],
    // phase 2 (half-pel)
    [-1.0, 4.0, -11.0, 40.0, 40.0, -11.0, 4.0, -1.0],
    // phase 3 (three-quarter-pel)
    [0.0, 1.0, -5.0, 17.0, 58.0, -10.0, 4.0, -1.0],
];

/// One motion-compensation job: block origin and fractional-pel phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McJob {
    /// Block top-left x in the source image (must leave a 3/4-pixel margin).
    pub x: usize,
    /// Block top-left y in the source image.
    pub y: usize,
    /// Horizontal quarter-pel phase, 0–3.
    pub frac_x: u8,
    /// Vertical quarter-pel phase, 0–3.
    pub frac_y: u8,
}

/// The HEVC-style motion-compensation benchmark.
///
/// # Examples
///
/// ```
/// use krigeval_kernels::{hevc::HevcMcBenchmark, WordLengthBenchmark};
///
/// # fn main() -> Result<(), krigeval_kernels::KernelError> {
/// let mc = HevcMcBenchmark::with_defaults();
/// assert_eq!(mc.num_variables(), 23);
/// let p = mc.noise_power(&vec![12; 23])?;
/// assert!(p.db() < -40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HevcMcBenchmark {
    image: Vec<Vec<f64>>,
    jobs: Vec<McJob>,
    references: Vec<Vec<f64>>,
}

impl HevcMcBenchmark {
    /// Paper-faithful configuration: a 96×96 smooth synthetic frame and 24
    /// blocks covering all three fractional-pel paths.
    pub fn with_defaults() -> HevcMcBenchmark {
        HevcMcBenchmark::new(96, 24, 0x4EC0_0004)
    }

    /// Builds the benchmark on a `size × size` smooth image with
    /// `num_blocks` jobs cycling through fractional phases.
    ///
    /// # Panics
    ///
    /// Panics if `size < 32` (too small to place blocks with filter margins)
    /// or `num_blocks == 0`.
    pub fn new(size: usize, num_blocks: usize, seed: u64) -> HevcMcBenchmark {
        assert!(size >= 32, "image too small for blocks plus filter margins");
        assert!(num_blocks > 0, "need at least one block");
        let image = smooth_image(seed, size, size, 6);
        // Deterministic job placement: stride across the image, cycle the
        // nine (frac_x, frac_y) combinations that exercise all three paths.
        let phases: [(u8, u8); 9] = [
            (2, 2),
            (1, 0),
            (0, 1),
            (3, 2),
            (2, 0),
            (0, 3),
            (1, 3),
            (2, 1),
            (3, 3),
        ];
        let usable = size - BLOCK - TAPS; // margin for the 8-tap window
        let jobs: Vec<McJob> = (0..num_blocks)
            .map(|i| {
                let (frac_x, frac_y) = phases[i % phases.len()];
                McJob {
                    x: 4 + (i * 13) % usable.max(1),
                    y: 4 + (i * 29) % usable.max(1),
                    frac_x,
                    frac_y,
                }
            })
            .collect();
        let references = jobs
            .iter()
            .map(|job| interpolate_block(&image, *job, &mut Passthrough))
            .collect();
        HevcMcBenchmark {
            image,
            jobs,
            references,
        }
    }

    /// The motion-compensation jobs in the data set.
    pub fn jobs(&self) -> &[McJob] {
        &self.jobs
    }
}

/// Quantization hooks for the interpolation data path. The reference path
/// uses [`Passthrough`]; the fixed-point path uses [`SiteQuantizers`].
trait McQuant {
    fn product(&self, tap: usize, vertical: bool, v: f64) -> f64;
    fn accumulator(&self, vertical: bool, v: f64) -> f64;
    fn h_intermediate(&self, v: f64) -> f64;
    fn path_output(&self, path: McPath, v: f64) -> f64;
    fn output(&self, v: f64) -> f64;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum McPath {
    TwoD,
    HorizontalOnly,
    VerticalOnly,
}

struct Passthrough;

impl McQuant for Passthrough {
    fn product(&self, _: usize, _: bool, v: f64) -> f64 {
        v
    }
    fn accumulator(&self, _: bool, v: f64) -> f64 {
        v
    }
    fn h_intermediate(&self, v: f64) -> f64 {
        v
    }
    fn path_output(&self, _: McPath, v: f64) -> f64 {
        v
    }
    fn output(&self, v: f64) -> f64 {
        v
    }
}

struct SiteQuantizers {
    h_products: Vec<Quantizer>,
    h_acc: Quantizer,
    h_out: Quantizer,
    v_products: Vec<Quantizer>,
    v_acc: Quantizer,
    v_out: Quantizer,
    h_only_out: Quantizer,
    v_only_out: Quantizer,
    final_out: Quantizer,
}

impl SiteQuantizers {
    fn from_word_lengths(w: &[i32]) -> Result<SiteQuantizers, KernelError> {
        // Pixels are in [0, 1); tap products stay below 58/64 in magnitude
        // (0 integer bits); accumulators need Σ|h| ≈ 1.75 of headroom
        // (1 integer bit); stage outputs are near-pixel-range (1 integer bit
        // of headroom for filter overshoot).
        let q0 = |wl: i32| -> Result<Quantizer, KernelError> {
            Ok(Quantizer::new(QFormat::with_word_length(0, wl)?))
        };
        let q1 = |wl: i32| -> Result<Quantizer, KernelError> {
            Ok(Quantizer::new(QFormat::with_word_length(1, wl)?))
        };
        Ok(SiteQuantizers {
            h_products: w[0..8].iter().map(|&x| q0(x)).collect::<Result<_, _>>()?,
            h_acc: q1(w[8])?,
            h_out: q1(w[9])?,
            v_products: w[10..18].iter().map(|&x| q0(x)).collect::<Result<_, _>>()?,
            v_acc: q1(w[18])?,
            v_out: q1(w[19])?,
            h_only_out: q1(w[20])?,
            v_only_out: q1(w[21])?,
            final_out: q1(w[22])?,
        })
    }
}

impl McQuant for SiteQuantizers {
    fn product(&self, tap: usize, vertical: bool, v: f64) -> f64 {
        if vertical {
            self.v_products[tap].quantize(v)
        } else {
            self.h_products[tap].quantize(v)
        }
    }
    fn accumulator(&self, vertical: bool, v: f64) -> f64 {
        if vertical {
            self.v_acc.quantize(v)
        } else {
            self.h_acc.quantize(v)
        }
    }
    fn h_intermediate(&self, v: f64) -> f64 {
        self.h_out.quantize(v)
    }
    fn path_output(&self, path: McPath, v: f64) -> f64 {
        match path {
            McPath::TwoD => self.v_out.quantize(v),
            McPath::HorizontalOnly => self.h_only_out.quantize(v),
            McPath::VerticalOnly => self.v_only_out.quantize(v),
        }
    }
    fn output(&self, v: f64) -> f64 {
        self.final_out.quantize(v)
    }
}

/// 8-tap filter at one position, with per-tap product and accumulator hooks.
fn filter8(samples: &[f64], taps: &[f64; TAPS], vertical: bool, q: &mut dyn McQuant) -> f64 {
    let mut acc = 0.0;
    for (t, &h) in taps.iter().enumerate() {
        let product = q.product(t, vertical, h / 64.0 * samples[t]);
        acc = q.accumulator(vertical, acc + product);
    }
    acc
}

/// Interpolates one 8×8 block (the module under test).
fn interpolate_block(image: &[Vec<f64>], job: McJob, q: &mut dyn McQuant) -> Vec<f64> {
    let fx = job.frac_x as usize;
    let fy = job.frac_y as usize;
    let mut out = Vec::with_capacity(BLOCK * BLOCK);
    match (fx, fy) {
        (0, 0) => {
            for dy in 0..BLOCK {
                for dx in 0..BLOCK {
                    out.push(q.output(image[job.y + dy][job.x + dx]));
                }
            }
        }
        (_, 0) => {
            let taps = &LUMA_FILTERS[fx - 1];
            for dy in 0..BLOCK {
                for dx in 0..BLOCK {
                    let row = &image[job.y + dy];
                    let window = &row[job.x + dx - 3..job.x + dx + 5];
                    let v = filter8(window, taps, false, q);
                    let v = q.path_output(McPath::HorizontalOnly, v);
                    out.push(q.output(v));
                }
            }
        }
        (0, _) => {
            let taps = &LUMA_FILTERS[fy - 1];
            for dy in 0..BLOCK {
                for dx in 0..BLOCK {
                    let col: Vec<f64> = (0..TAPS)
                        .map(|t| image[job.y + dy + t - 3][job.x + dx])
                        .collect();
                    let v = filter8(&col, taps, true, q);
                    let v = q.path_output(McPath::VerticalOnly, v);
                    out.push(q.output(v));
                }
            }
        }
        (_, _) => {
            let h_taps = &LUMA_FILTERS[fx - 1];
            let v_taps = &LUMA_FILTERS[fy - 1];
            // Horizontal pass over BLOCK + 7 rows.
            let mut intermediate = vec![vec![0.0; BLOCK]; BLOCK + TAPS - 1];
            for (r, row_out) in intermediate.iter_mut().enumerate() {
                let row = &image[job.y + r - 3];
                for (dx, cell) in row_out.iter_mut().enumerate() {
                    let window = &row[job.x + dx - 3..job.x + dx + 5];
                    let v = filter8(window, h_taps, false, q);
                    *cell = q.h_intermediate(v);
                }
            }
            // Vertical pass.
            for dy in 0..BLOCK {
                for dx in 0..BLOCK {
                    let col: Vec<f64> = (0..TAPS).map(|t| intermediate[dy + t][dx]).collect();
                    let v = filter8(&col, v_taps, true, q);
                    let v = q.path_output(McPath::TwoD, v);
                    out.push(q.output(v));
                }
            }
        }
    }
    out
}

impl WordLengthBenchmark for HevcMcBenchmark {
    fn name(&self) -> &str {
        "hevc_mc"
    }

    fn num_variables(&self) -> usize {
        NUM_VARIABLES
    }

    fn noise_power(&self, word_lengths: &[i32]) -> Result<NoisePower, KernelError> {
        self.validate(word_lengths)?;
        let mut quantizers = SiteQuantizers::from_word_lengths(word_lengths)?;
        let mut meter = NoiseMeter::new();
        for (job, reference) in self.jobs.iter().zip(&self.references) {
            let approx = interpolate_block(&self.image, *job, &mut quantizers);
            meter.record_slices(reference, &approx);
        }
        Ok(meter.noise_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HevcMcBenchmark {
        HevcMcBenchmark::new(48, 9, 0x4EC0_0004)
    }

    #[test]
    fn filters_have_unit_dc_gain() {
        for f in &LUMA_FILTERS {
            let sum: f64 = f.iter().sum();
            assert!((sum - 64.0).abs() < 1e-12, "{f:?}");
        }
    }

    #[test]
    fn half_pel_filter_is_symmetric() {
        let f = &LUMA_FILTERS[1];
        for i in 0..TAPS / 2 {
            assert_eq!(f[i], f[TAPS - 1 - i]);
        }
    }

    #[test]
    fn quarter_and_three_quarter_are_mirrors() {
        for i in 0..TAPS {
            assert_eq!(LUMA_FILTERS[0][i], LUMA_FILTERS[2][TAPS - 1 - i]);
        }
    }

    #[test]
    fn has_23_variables() {
        assert_eq!(small().num_variables(), 23);
    }

    #[test]
    fn interpolating_a_constant_image_returns_the_constant() {
        let image = vec![vec![0.5; 48]; 48];
        let job = McJob {
            x: 8,
            y: 8,
            frac_x: 2,
            frac_y: 2,
        };
        let out = interpolate_block(&image, job, &mut Passthrough);
        for v in out {
            assert!((v - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn all_three_paths_are_exercised() {
        let b = small();
        let has = |f: fn(&McJob) -> bool| b.jobs().iter().any(f);
        assert!(has(|j| j.frac_x > 0 && j.frac_y > 0), "2-D path missing");
        assert!(has(|j| j.frac_x > 0 && j.frac_y == 0), "H path missing");
        assert!(has(|j| j.frac_x == 0 && j.frac_y > 0), "V path missing");
    }

    #[test]
    fn noise_decreases_with_word_length() {
        let b = small();
        let mut prev = f64::INFINITY;
        for w in [6, 8, 10, 12] {
            let db = b.noise_power(&[w; 23]).unwrap().db();
            assert!(db < prev, "w={w}: {db} !< {prev}");
            prev = db;
        }
    }

    #[test]
    fn validates_shape() {
        let b = small();
        assert!(b.noise_power(&[10; 22]).is_err());
        assert!(b.noise_power(&[10; 24]).is_err());
        let mut w = vec![10; 23];
        w[5] = 99;
        assert!(b.noise_power(&w).is_err());
    }

    #[test]
    fn deterministic() {
        let b = small();
        let w: Vec<i32> = (0..23).map(|i| 8 + (i % 5)).collect();
        assert_eq!(
            b.noise_power(&w).unwrap().linear(),
            b.noise_power(&w).unwrap().linear()
        );
    }

    #[test]
    fn narrowing_one_site_changes_noise() {
        let b = small();
        let base = b.noise_power(&[14; 23]).unwrap().db();
        let mut w = vec![14; 23];
        w[22] = 6; // final output register
        let narrowed = b.noise_power(&w).unwrap().db();
        assert!(narrowed > base + 6.0, "base {base}, narrowed {narrowed}");
    }
}
