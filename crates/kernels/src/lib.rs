//! Signal-processing benchmark kernels for word-length optimization.
//!
//! These are the four fixed-point benchmarks of the paper's experimental
//! study (Section IV):
//!
//! | kernel                | Nv | paper's quality metric |
//! |-----------------------|----|------------------------|
//! | [`fir::FirBenchmark`]  (64-tap)      | 2  | output noise power |
//! | [`iir::IirBenchmark`]  (8th order)   | 5  | output noise power |
//! | [`fft::FftBenchmark`]  (64 points)   | 10 | output noise power |
//! | [`hevc::HevcMcBenchmark`] (8×8 MC)   | 23 | output noise power |
//!
//! Each kernel owns a deterministic input data set (the paper's "exhaustive
//! input data set `I`") and exposes [`WordLengthBenchmark::noise_power`],
//! which runs the double-precision reference and the word-length-configured
//! fixed-point implementation side by side and returns the mean error power
//! at the output — the quantity `P` whose opposite is the accuracy metric
//! `λ` handed to the optimizer and to kriging.
//!
//! The fixed-point paths instrument every internal variable named in the
//! benchmark's word-length vector with a [`krigeval_fixedpoint::Quantizer`];
//! this emulates a C++ fixed-point library (the paper's refs \[12\], \[13\]) at
//! `f64` simulation speed.
//!
//! # Examples
//!
//! ```
//! use krigeval_kernels::{fir::FirBenchmark, WordLengthBenchmark};
//!
//! # fn main() -> Result<(), krigeval_kernels::KernelError> {
//! let fir = FirBenchmark::with_defaults();
//! assert_eq!(fir.num_variables(), 2);
//! let coarse = fir.noise_power(&[6, 6])?;
//! let fine = fir.noise_power(&[14, 14])?;
//! assert!(fine.db() < coarse.db()); // more bits, less noise
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels (substitution loops, butterfly passes, separable
// filters) read several arrays at one index; explicit index loops are the
// clearest form for them.
#![allow(clippy::needless_range_loop)]

mod benchmark;
pub mod dct;
mod error;
pub mod fft;
pub mod filter_design;
pub mod fir;
pub mod hevc;
pub mod iir;
pub mod lms;
pub mod signal;

pub use benchmark::WordLengthBenchmark;
pub use error::KernelError;
