//! LMS adaptive-filter benchmark (extension: not one of the paper's five).
//!
//! The least-mean-squares adaptive filter is the canonical *feedback*
//! word-length problem: quantization errors in the coefficient registers do
//! not just add noise, they perturb the adaptation trajectory itself. That
//! makes the accuracy surface less separable than the feed-forward kernels'
//! — a stress test for kriging-based evaluation.
//!
//! Setup: system identification. A reference LMS filter (double precision)
//! adapts to an unknown FIR channel over a fixed input; the fixed-point
//! LMS runs the same adaptation with quantized registers, and the metric is
//! the excess error power between the two filters' outputs.
//!
//! Three word-lengths are optimized:
//!
//! * variable 0: coefficient registers;
//! * variable 1: filter output / error register;
//! * variable 2: coefficient-update term (`μ·e·x` product).

use krigeval_fixedpoint::{NoiseMeter, NoisePower, QFormat, Quantizer};

use crate::signal::white_noise;
use crate::{KernelError, WordLengthBenchmark};

/// Number of word-length variables.
pub const NUM_VARIABLES: usize = 3;

/// The LMS adaptive-filter benchmark (`Nv = 3`).
///
/// # Examples
///
/// ```
/// use krigeval_kernels::{lms::LmsBenchmark, WordLengthBenchmark};
///
/// # fn main() -> Result<(), krigeval_kernels::KernelError> {
/// let lms = LmsBenchmark::with_defaults();
/// assert_eq!(lms.num_variables(), 3);
/// let coarse = lms.noise_power(&[8, 8, 8])?;
/// let fine = lms.noise_power(&[15, 15, 15])?;
/// assert!(fine.db() < coarse.db());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LmsBenchmark {
    channel: Vec<f64>,
    input: Vec<f64>,
    desired: Vec<f64>,
    reference_output: Vec<f64>,
    step_size: f64,
}

impl LmsBenchmark {
    /// Default configuration: an 8-tap channel, 2048 samples, μ = 0.04.
    pub fn with_defaults() -> LmsBenchmark {
        LmsBenchmark::new(8, 2048, 0.04, 0x1335_0006)
    }

    /// Builds the benchmark: `taps`-coefficient adaptive filter identifying
    /// a pseudo-random channel over `samples` white-noise samples.
    ///
    /// # Panics
    ///
    /// Panics if `taps == 0`, `samples == 0` or `step_size` is outside
    /// `(0, 1)`.
    pub fn new(taps: usize, samples: usize, step_size: f64, seed: u64) -> LmsBenchmark {
        assert!(taps > 0, "need at least one tap");
        assert!(samples > 0, "need at least one sample");
        assert!(
            step_size > 0.0 && step_size < 1.0,
            "step size must be in (0, 1), got {step_size}"
        );
        // A decaying pseudo-random channel with ~unit first tap, scaled so
        // the desired signal stays inside (−1, 1) on the white-noise input.
        let raw = white_noise(seed, taps, 1.0);
        let mut channel: Vec<f64> = raw
            .iter()
            .enumerate()
            .map(|(k, v)| v * 0.7f64.powi(k as i32))
            .collect();
        let gain: f64 = channel.iter().map(|c| c.abs()).sum();
        for c in &mut channel {
            *c /= gain * 1.1;
        }
        let input = white_noise(seed.wrapping_add(1), samples, 0.95);
        let desired: Vec<f64> = (0..samples)
            .map(|n| {
                channel
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k <= n)
                    .map(|(k, c)| c * input[n - k])
                    .sum()
            })
            .collect();
        let reference_output = run_lms(&input, &desired, taps, step_size, &mut |_, v| v);
        LmsBenchmark {
            channel,
            input,
            desired,
            reference_output,
            step_size,
        }
    }

    /// The unknown channel being identified.
    pub fn channel(&self) -> &[f64] {
        &self.channel
    }
}

/// Registers that can be quantized in the LMS loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmsSite {
    /// Coefficient registers (after each update).
    Coefficient,
    /// Filter output / error register.
    Output,
    /// The `μ·e·x` update term.
    Update,
}

/// Runs the LMS adaptation; `q(site, v)` quantizes each register write.
/// Returns the filter-output sequence.
fn run_lms(
    input: &[f64],
    desired: &[f64],
    taps: usize,
    step_size: f64,
    q: &mut dyn FnMut(LmsSite, f64) -> f64,
) -> Vec<f64> {
    let mut weights = vec![0.0; taps];
    let mut output = Vec::with_capacity(input.len());
    for n in 0..input.len() {
        let mut y = 0.0;
        for k in 0..taps.min(n + 1) {
            y += weights[k] * input[n - k];
        }
        let y = q(LmsSite::Output, y);
        let e = q(LmsSite::Output, desired[n] - y);
        for k in 0..taps.min(n + 1) {
            let update = q(LmsSite::Update, step_size * e * input[n - k]);
            weights[k] = q(LmsSite::Coefficient, weights[k] + update);
        }
        output.push(y);
    }
    output
}

impl WordLengthBenchmark for LmsBenchmark {
    fn name(&self) -> &str {
        "lms"
    }

    fn num_variables(&self) -> usize {
        NUM_VARIABLES
    }

    fn noise_power(&self, word_lengths: &[i32]) -> Result<NoisePower, KernelError> {
        self.validate(word_lengths)?;
        // Coefficients stay sub-unit (normalized channel); outputs/errors in
        // (−1, 1); update terms are tiny products — all 0 integer bits.
        let q_coef = Quantizer::new(QFormat::with_word_length(0, word_lengths[0])?);
        let q_out = Quantizer::new(QFormat::with_word_length(0, word_lengths[1])?);
        let q_upd = Quantizer::new(QFormat::with_word_length(0, word_lengths[2])?);
        let output = run_lms(
            &self.input,
            &self.desired,
            self.channel.len(),
            self.step_size,
            &mut |site, v| match site {
                LmsSite::Coefficient => q_coef.quantize(v),
                LmsSite::Output => q_out.quantize(v),
                LmsSite::Update => q_upd.quantize(v),
            },
        );
        // Skip the initial convergence transient: compare steady state.
        let skip = output.len() / 4;
        let mut meter = NoiseMeter::new();
        meter.record_slices(&self.reference_output[skip..], &output[skip..]);
        Ok(meter.noise_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LmsBenchmark {
        LmsBenchmark::new(8, 1024, 0.04, 0x1335_0006)
    }

    #[test]
    fn reference_lms_converges_to_the_channel() {
        let b = small();
        // After adaptation, the reference output tracks the desired signal.
        let tail = b.reference_output.len() * 3 / 4;
        let mut err = NoiseMeter::new();
        err.record_slices(&b.desired[tail..], &b.reference_output[tail..]);
        let mse = err.noise_power().linear();
        let sig: f64 =
            b.desired[tail..].iter().map(|v| v * v).sum::<f64>() / (b.desired.len() - tail) as f64;
        assert!(
            mse < sig * 0.05,
            "LMS failed to converge: mse {mse:e} vs signal {sig:e}"
        );
    }

    #[test]
    fn noise_decreases_with_word_length() {
        let b = small();
        let mut prev = f64::INFINITY;
        for w in [8, 10, 12, 14] {
            let db = b.noise_power(&[w; 3]).unwrap().db();
            assert!(db < prev, "w={w}: {db} !< {prev}");
            prev = db;
        }
    }

    #[test]
    fn coefficient_register_matters_most() {
        // Coefficient quantization perturbs the adaptation state itself and
        // recirculates; it should dominate an equally narrow output register.
        let b = small();
        let narrow_coef = b.noise_power(&[7, 14, 14]).unwrap().db();
        let narrow_out = b.noise_power(&[14, 7, 14]).unwrap().db();
        let balanced = b.noise_power(&[14, 14, 14]).unwrap().db();
        assert!(narrow_coef > balanced, "{narrow_coef} vs {balanced}");
        assert!(narrow_out > balanced, "{narrow_out} vs {balanced}");
    }

    #[test]
    fn update_underflow_stalls_adaptation() {
        // With a very narrow update register, μ·e·x quantizes to zero and
        // the filter never adapts: the error should be dramatically worse.
        let b = small();
        let stalled = b.noise_power(&[14, 14, 4]).unwrap().db();
        let healthy = b.noise_power(&[14, 14, 14]).unwrap().db();
        assert!(
            stalled > healthy + 20.0,
            "stalled {stalled} dB vs healthy {healthy} dB"
        );
    }

    #[test]
    fn validates_shape() {
        let b = small();
        assert!(b.noise_power(&[10, 10]).is_err());
        assert!(b.noise_power(&[10, 10, 99]).is_err());
    }

    #[test]
    fn deterministic() {
        let b = small();
        assert_eq!(
            b.noise_power(&[9, 11, 13]).unwrap().linear(),
            b.noise_power(&[9, 11, 13]).unwrap().linear()
        );
    }

    #[test]
    fn channel_is_normalized() {
        let b = small();
        let gain: f64 = b.channel().iter().map(|c| c.abs()).sum();
        assert!(gain < 1.0, "channel L1 gain {gain} risks overflow");
    }
}
