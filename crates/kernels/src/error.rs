//! Error type shared by the benchmark kernels.

use std::error::Error;
use std::fmt;

use krigeval_fixedpoint::FixedPointError;

/// Error returned when a benchmark is asked to simulate an invalid
/// word-length configuration.
///
/// # Examples
///
/// ```
/// use krigeval_kernels::{fir::FirBenchmark, KernelError, WordLengthBenchmark};
///
/// let fir = FirBenchmark::with_defaults();
/// let err = fir.noise_power(&[8]).unwrap_err(); // needs 2 variables
/// assert!(matches!(err, KernelError::WrongVariableCount { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// The word-length vector has the wrong number of entries.
    WrongVariableCount {
        /// Number of variables the benchmark optimizes.
        expected: usize,
        /// Number of entries supplied.
        actual: usize,
    },
    /// A word-length entry is outside the benchmark's supported range.
    WordLengthOutOfRange {
        /// Index of the offending variable.
        index: usize,
        /// Rejected value.
        word_length: i32,
        /// Inclusive minimum supported word-length.
        min: i32,
        /// Inclusive maximum supported word-length.
        max: i32,
    },
    /// A derived fixed-point format was invalid.
    Format(FixedPointError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::WrongVariableCount { expected, actual } => {
                write!(f, "expected {expected} word-length variables, got {actual}")
            }
            KernelError::WordLengthOutOfRange {
                index,
                word_length,
                min,
                max,
            } => write!(
                f,
                "word-length {word_length} for variable {index} outside [{min}, {max}]"
            ),
            KernelError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FixedPointError> for KernelError {
    fn from(e: FixedPointError) -> KernelError {
        KernelError::Format(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KernelError::WrongVariableCount {
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = KernelError::WordLengthOutOfRange {
            index: 1,
            word_length: 99,
            min: 2,
            max: 16,
        };
        assert!(e.to_string().contains("outside [2, 16]"));
    }

    #[test]
    fn from_fixed_point_error_keeps_source() {
        let inner = FixedPointError::InvalidFormat {
            integer_bits: -1,
            fractional_bits: 0,
        };
        let e: KernelError = inner.clone().into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("format error"));
    }
}
