//! Deterministic input-signal generators.
//!
//! Every benchmark's "exhaustive input data set `I`" (paper Section III-B)
//! is produced here from a fixed seed, so a configuration's noise power is a
//! pure function of the word-length vector and experiments are exactly
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform white noise in `(-amplitude, amplitude)`.
///
/// # Examples
///
/// ```
/// let x = krigeval_kernels::signal::white_noise(42, 128, 0.9);
/// assert_eq!(x.len(), 128);
/// assert!(x.iter().all(|v| v.abs() < 0.9));
/// // Determinism: same seed, same signal.
/// assert_eq!(x, krigeval_kernels::signal::white_noise(42, 128, 0.9));
/// ```
pub fn white_noise(seed: u64, len: usize, amplitude: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.gen_range(-amplitude..amplitude))
        .collect()
}

/// A mixture of sinusoids with pseudo-random phases, normalized to
/// `(-amplitude, amplitude)` — a narrowband test signal that exercises
/// filter passbands more realistically than white noise.
///
/// # Examples
///
/// ```
/// let x = krigeval_kernels::signal::sine_mix(7, 256, &[0.01, 0.05, 0.11], 0.95);
/// assert_eq!(x.len(), 256);
/// assert!(x.iter().all(|v| v.abs() <= 0.95));
/// ```
pub fn sine_mix(seed: u64, len: usize, normalized_freqs: &[f64], amplitude: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let phases: Vec<f64> = normalized_freqs
        .iter()
        .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
        .collect();
    let raw: Vec<f64> = (0..len)
        .map(|n| {
            normalized_freqs
                .iter()
                .zip(&phases)
                .map(|(f, p)| (std::f64::consts::TAU * f * n as f64 + p).sin())
                .sum()
        })
        .collect();
    let peak = raw.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
    raw.iter().map(|v| v / peak * amplitude).collect()
}

/// A smooth pseudo-random grayscale image in `[0, 1)`, built by bilinear
/// interpolation of a coarse random grid — a stand-in for natural video
/// content in the HEVC motion-compensation benchmark (real pixel blocks are
/// spatially correlated; pure white noise would overstate interpolation
/// noise).
///
/// `width` and `height` are in pixels; `cell` is the coarse-grid spacing
/// (larger ⇒ smoother).
///
/// # Panics
///
/// Panics if `cell == 0` or either dimension is zero.
///
/// # Examples
///
/// ```
/// let img = krigeval_kernels::signal::smooth_image(3, 32, 24, 8);
/// assert_eq!(img.len(), 24);
/// assert_eq!(img[0].len(), 32);
/// assert!(img.iter().flatten().all(|&v| (0.0..1.0).contains(&v)));
/// ```
pub fn smooth_image(seed: u64, width: usize, height: usize, cell: usize) -> Vec<Vec<f64>> {
    assert!(cell > 0, "cell size must be positive");
    assert!(width > 0 && height > 0, "image must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let gw = width / cell + 2;
    let gh = height / cell + 2;
    let grid: Vec<Vec<f64>> = (0..gh)
        .map(|_| (0..gw).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    (0..height)
        .map(|y| {
            (0..width)
                .map(|x| {
                    let gx = x as f64 / cell as f64;
                    let gy = y as f64 / cell as f64;
                    let (x0, y0) = (gx.floor() as usize, gy.floor() as usize);
                    let (fx, fy) = (gx - x0 as f64, gy - y0 as f64);
                    let v00 = grid[y0][x0];
                    let v01 = grid[y0][x0 + 1];
                    let v10 = grid[y0 + 1][x0];
                    let v11 = grid[y0 + 1][x0 + 1];
                    let v = v00 * (1.0 - fx) * (1.0 - fy)
                        + v01 * fx * (1.0 - fy)
                        + v10 * (1.0 - fx) * fy
                        + v11 * fx * fy;
                    v.min(1.0 - 1e-9)
                })
                .collect()
        })
        .collect()
}

/// Complex white noise as interleaved `(re, im)` pairs in the unit square,
/// for the FFT benchmark.
///
/// # Examples
///
/// ```
/// let x = krigeval_kernels::signal::complex_white_noise(11, 64, 0.5);
/// assert_eq!(x.len(), 64);
/// assert!(x.iter().all(|(re, im)| re.abs() < 0.5 && im.abs() < 0.5));
/// ```
pub fn complex_white_noise(seed: u64, len: usize, amplitude: f64) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(-amplitude..amplitude),
                rng.gen_range(-amplitude..amplitude),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_noise_is_deterministic_and_bounded() {
        let a = white_noise(1, 1000, 0.8);
        let b = white_noise(1, 1000, 0.8);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() < 0.8));
        let c = white_noise(2, 1000, 0.8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn white_noise_is_roughly_zero_mean() {
        let x = white_noise(5, 100_000, 1.0);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        let var = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        // Uniform(-1,1) variance = 1/3.
        assert!((var - 1.0 / 3.0).abs() < 0.01, "var = {var}");
    }

    #[test]
    fn sine_mix_peaks_at_amplitude() {
        let x = sine_mix(9, 4096, &[0.013, 0.07], 0.9);
        let peak = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!((peak - 0.9).abs() < 1e-9);
    }

    #[test]
    fn smooth_image_is_smooth() {
        let img = smooth_image(4, 64, 64, 8);
        // Neighbouring pixels differ by much less than the full range.
        let mut max_grad = 0.0f64;
        for y in 0..64 {
            for x in 1..64 {
                max_grad = max_grad.max((img[y][x] - img[y][x - 1]).abs());
            }
        }
        assert!(max_grad < 0.3, "max gradient {max_grad} too steep");
    }

    #[test]
    fn smooth_image_deterministic() {
        assert_eq!(smooth_image(8, 16, 16, 4), smooth_image(8, 16, 16, 4));
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_panics() {
        let _ = smooth_image(0, 8, 8, 0);
    }

    #[test]
    fn complex_noise_shape() {
        let x = complex_white_noise(3, 128, 0.7);
        assert_eq!(x.len(), 128);
        assert_eq!(x, complex_white_noise(3, 128, 0.7));
    }
}
