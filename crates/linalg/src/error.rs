//! Error type shared by every decomposition in this crate.

use std::error::Error;
use std::fmt;

/// Error returned by matrix constructors and decompositions.
///
/// # Examples
///
/// ```
/// use krigeval_linalg::{Matrix, LinalgError};
///
/// let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]).unwrap_err();
/// assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand dimensions are incompatible with the requested operation.
    ShapeMismatch {
        /// Dimensions the operation expected, e.g. `"2x2 rows"`.
        expected: String,
        /// Dimensions that were actually supplied.
        actual: String,
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular {
        /// Pivot index at which elimination broke down.
        pivot: usize,
    },
    /// Cholesky factorization found a non-positive pivot: the matrix is not
    /// positive definite.
    NotPositiveDefinite {
        /// Column index of the offending pivot.
        column: usize,
    },
    /// A matrix dimension was zero where a non-empty matrix is required.
    Empty,
    /// A value that must be finite was NaN or infinite.
    NonFinite {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite at column {column}")
            }
            LinalgError::Empty => write!(f, "matrix must be non-empty"),
            LinalgError::NonFinite { row, col } => {
                write!(f, "non-finite entry at ({row}, {col})")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let messages = [
            LinalgError::ShapeMismatch {
                expected: "3x3".into(),
                actual: "2x3".into(),
            }
            .to_string(),
            LinalgError::Singular { pivot: 1 }.to_string(),
            LinalgError::NotPositiveDefinite { column: 0 }.to_string(),
            LinalgError::Empty.to_string(),
            LinalgError::NonFinite { row: 0, col: 1 }.to_string(),
        ];
        for m in messages {
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
            assert!(!m.ends_with('.'), "{m}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
