//! Dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::LinalgError;

/// Dense, row-major, `f64` matrix.
///
/// This is the only matrix representation in the workspace; kriging systems
/// are small (tens of neighbours), so a contiguous `Vec<f64>` with row-major
/// indexing is both simple and cache-friendly.
///
/// # Examples
///
/// ```
/// use krigeval_linalg::Matrix;
///
/// # fn main() -> Result<(), krigeval_linalg::LinalgError> {
/// let a = Matrix::identity(3);
/// let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]])?;
/// assert_eq!(a.mul(&b)?, b);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use krigeval_linalg::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use krigeval_linalg::Matrix;
    /// let i = Matrix::identity(2);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `rows` is empty or the first row is
    /// empty, and [`LinalgError::ShapeMismatch`] if the rows have unequal
    /// lengths.
    ///
    /// # Examples
    ///
    /// ```
    /// use krigeval_linalg::Matrix;
    /// # fn main() -> Result<(), krigeval_linalg::LinalgError> {
    /// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// assert_eq!(m[(1, 0)], 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_rows(rows: &[&[f64]]) -> Result<Matrix, LinalgError> {
        let nrows = rows.len();
        if nrows == 0 || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(LinalgError::ShapeMismatch {
                    expected: format!("row of length {ncols}"),
                    actual: format!("row {i} of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`
    /// and [`LinalgError::Empty`] if either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} elements", rows * cols),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    ///
    /// This is the constructor the kriging solver uses to assemble the Γ
    /// matrix of semi-variogram values (Eq. 9 of the paper).
    ///
    /// # Examples
    ///
    /// ```
    /// use krigeval_linalg::Matrix;
    /// let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
    /// assert_eq!(m[(1, 1)], 2.0);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "col {j} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transposed matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use krigeval_linalg::Matrix;
    /// # fn main() -> Result<(), krigeval_linalg::LinalgError> {
    /// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])?;
    /// let t = m.transpose();
    /// assert_eq!(t.shape(), (3, 2));
    /// assert_eq!(t[(2, 1)], 6.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} rows", self.cols),
                actual: format!("{} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                actual: format!("vector of length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Maximum absolute element, or 0 for an all-zero matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Checks whether `self` is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(&self, rhs: &Matrix, f: F) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                actual: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| f(*a, *b))
                .collect(),
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
        let empty_row: &[f64] = &[];
        assert_eq!(
            Matrix::from_rows(&[empty_row]).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        assert_eq!(
            Matrix::from_vec(0, 2, vec![]).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(0, 1)], 4.0);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn mul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul(&b).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn mul_vec_matches() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = a.scale(2.0);
        assert_eq!(a.add(&a).unwrap(), b);
        assert_eq!(b.sub(&a).unwrap(), a);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.5, 3.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-9));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.is_finite());
        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn debug_and_display_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m:?}").is_empty());
        assert!(format!("{m}").contains("1.000000"));
    }
}
