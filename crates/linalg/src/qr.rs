//! QR decomposition via Householder reflections, and linear least squares.
//!
//! The variogram-model fit in `krigeval-core` solves small over-determined
//! systems (empirical variogram bins vs. model parameters, linearized by
//! Gauss–Newton); QR least squares is the numerically sound way to do that.

use crate::{LinalgError, Matrix};

/// QR decomposition `A = Q·R` of an `m × n` matrix with `m ≥ n`, computed
/// with Householder reflections.
///
/// `Q` is stored implicitly as the sequence of Householder vectors; callers
/// only need [`QrDecomposition::solve_least_squares`], which applies `Qᵀ` on
/// the fly.
///
/// # Examples
///
/// ```
/// use krigeval_linalg::{Matrix, QrDecomposition};
///
/// # fn main() -> Result<(), krigeval_linalg::LinalgError> {
/// // Fit y = a + b·x to three points on the line y = 1 + 2x.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let qr = QrDecomposition::new(&a)?;
/// let coef = qr.solve_least_squares(&[1.0, 3.0, 5.0])?;
/// assert!((coef[0] - 1.0).abs() < 1e-10);
/// assert!((coef[1] - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// R in the upper triangle (including diagonal); Householder vector tails
    /// (components below the diagonal) in the lower trapezoid.
    qr: Matrix,
    /// First component of each Householder vector (the diagonal slot holds R).
    v0s: Vec<f64>,
    /// Scalar β of each reflector `H = I − β·v·vᵀ`.
    betas: Vec<f64>,
}

impl QrDecomposition {
    /// Threshold on |R[j,j]| (relative to the matrix scale) below which the
    /// matrix is declared rank deficient.
    const RANK_TOL: f64 = 1e-12;

    /// Factorizes `a` (requires `a.rows() >= a.cols()`).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a.rows() < a.cols()`.
    /// * [`LinalgError::Empty`] if `a` has no elements.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/∞.
    pub fn new(a: &Matrix) -> Result<QrDecomposition, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                expected: "rows >= cols".into(),
                actual: format!("{m}x{n}"),
            });
        }
        for i in 0..m {
            for j in 0..n {
                if !a[(i, j)].is_finite() {
                    return Err(LinalgError::NonFinite { row: i, col: j });
                }
            }
        }
        let mut qr = a.clone();
        let mut v0s = vec![0.0; n];
        let mut betas = vec![0.0; n];
        for j in 0..n {
            let mut norm_sq = 0.0;
            for i in j..m {
                norm_sq += qr[(i, j)] * qr[(i, j)];
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                continue; // column already zero below (and at) the diagonal
            }
            let alpha = if qr[(j, j)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(j, j)] - alpha;
            let mut vtv = v0 * v0;
            for i in (j + 1)..m {
                vtv += qr[(i, j)] * qr[(i, j)];
            }
            let beta = if vtv == 0.0 { 0.0 } else { 2.0 / vtv };
            // Apply H = I − β·v·vᵀ to the trailing columns.
            for k in (j + 1)..n {
                let mut dot = v0 * qr[(j, k)];
                for i in (j + 1)..m {
                    dot += qr[(i, j)] * qr[(i, k)];
                }
                let s = beta * dot;
                qr[(j, k)] -= s * v0;
                for i in (j + 1)..m {
                    let delta = s * qr[(i, j)];
                    qr[(i, k)] -= delta;
                }
            }
            // Diagonal slot now holds R[j,j]; tail of v stays below it.
            qr[(j, j)] = alpha;
            v0s[j] = v0;
            betas[j] = beta;
        }
        Ok(QrDecomposition { qr, v0s, betas })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != self.rows()`.
    /// * [`LinalgError::Singular`] if `A` is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {m}"),
                actual: format!("vector of length {}", b.len()),
            });
        }
        let mut y = b.to_vec();
        // Apply Qᵀ = H_{n−1}···H_0 to b.
        for j in 0..n {
            let beta = self.betas[j];
            if beta == 0.0 {
                continue;
            }
            let v0 = self.v0s[j];
            let mut dot = v0 * y[j];
            for i in (j + 1)..m {
                dot += self.qr[(i, j)] * y[i];
            }
            let s = beta * dot;
            y[j] -= s * v0;
            for i in (j + 1)..m {
                let delta = s * self.qr[(i, j)];
                y[i] -= delta;
            }
        }
        // Back-substitute R·x = y[0..n].
        let scale = self.qr.max_abs().max(1.0);
        let mut x = vec![0.0; n];
        for j in (0..n).rev() {
            let rjj = self.qr[(j, j)];
            if rjj.abs() <= Self::RANK_TOL * scale {
                return Err(LinalgError::Singular { pivot: j });
            }
            let mut sum = y[j];
            for k in (j + 1)..n {
                sum -= self.qr[(j, k)] * x[k];
            }
            x[j] = sum / rjj;
        }
        Ok(x)
    }
}

/// Convenience: one-shot least squares `min ‖A·x − b‖₂`.
///
/// # Errors
///
/// See [`QrDecomposition::new`] and [`QrDecomposition::solve_least_squares`].
///
/// # Examples
///
/// ```
/// use krigeval_linalg::Matrix;
///
/// # fn main() -> Result<(), krigeval_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]])?;
/// let x = krigeval_linalg::qr::least_squares(&a, &[2.0, 4.0, 6.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    QrDecomposition::new(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_is_solved_exactly() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let x = least_squares(&a, &[4.0, 9.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn line_fit_recovers_slope_and_intercept() {
        // y = 3 - 0.5 x with exact data.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs).unwrap();
        let b: Vec<f64> = xs.iter().map(|&x| 3.0 - 0.5 * x).collect();
        let coef = least_squares(&a, &b).unwrap();
        assert!((coef[0] - 3.0).abs() < 1e-10);
        assert!((coef[1] + 0.5).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_noisy_fit_minimizes_residual() {
        // Perturb one point; the LS solution must satisfy the normal
        // equations Aᵀ(Ax − b) = 0.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [0.9, 2.1, 3.0, 4.05];
        let x = least_squares(&a, &b).unwrap();
        let r: Vec<f64> = a
            .mul_vec(&x)
            .unwrap()
            .iter()
            .zip(&b)
            .map(|(p, t)| p - t)
            .collect();
        let at_r = a.transpose().mul_vec(&r).unwrap();
        for v in at_r {
            assert!(v.abs() < 1e-10, "normal-equation residual {v}");
        }
    }

    #[test]
    fn rank_deficient_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert!(matches!(
            least_squares(&a, &[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular { .. }
        ));
    }

    #[test]
    fn wide_matrix_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            QrDecomposition::new(&a).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn non_finite_is_rejected() {
        let mut a = Matrix::identity(2);
        a[(1, 0)] = f64::INFINITY;
        assert!(matches!(
            QrDecomposition::new(&a).unwrap_err(),
            LinalgError::NonFinite { .. }
        ));
    }

    #[test]
    fn rhs_length_is_validated() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0]).is_err());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn qr_solution_satisfies_normal_equations(
                data in proptest::collection::vec(-5.0..5.0f64, 18),
                b in proptest::collection::vec(-5.0..5.0f64, 6),
            ) {
                let mut a = Matrix::from_vec(6, 3, data).unwrap();
                // Guard against rank deficiency.
                for j in 0..3 {
                    a[(j, j)] += 10.0;
                }
                let x = least_squares(&a, &b).unwrap();
                let r: Vec<f64> = a.mul_vec(&x).unwrap()
                    .iter().zip(&b).map(|(p, t)| p - t).collect();
                let at_r = a.transpose().mul_vec(&r).unwrap();
                for v in at_r {
                    prop_assert!(v.abs() < 1e-7);
                }
            }

            #[test]
            fn qr_matches_lu_on_square_systems(
                data in proptest::collection::vec(-5.0..5.0f64, 16),
                b in proptest::collection::vec(-5.0..5.0f64, 4),
            ) {
                let mut a = Matrix::from_vec(4, 4, data).unwrap();
                for i in 0..4 {
                    let row_sum: f64 = a.row(i).iter().map(|x| x.abs()).sum();
                    a[(i, i)] = row_sum + 1.0;
                }
                let x_qr = least_squares(&a, &b).unwrap();
                let x_lu = crate::lu::lu_solve(&a, &b).unwrap();
                for (q, l) in x_qr.iter().zip(&x_lu) {
                    prop_assert!((q - l).abs() < 1e-8);
                }
            }
        }
    }
}
