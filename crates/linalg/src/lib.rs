//! Hand-rolled dense linear algebra for kriging systems.
//!
//! The ordinary-kriging system solved by `krigeval-core` has the block form
//!
//! ```text
//! | γ̂(d_00) ... γ̂(d_0,N-1)  1 |   | μ_0  |   | γ̂(d_i0)  |
//! |   ...          ...      . | · | ...  | = |   ...     |
//! | γ̂(d_N-1,0) ...          1 |   | μ_N-1|   | γ̂(d_i,N-1)|
//! |   1     ...    1        0 |   |  m   |   |    1      |
//! ```
//!
//! which is symmetric but **indefinite** (the Lagrange row puts a zero on the
//! diagonal), so the workhorse here is [`LuDecomposition`] with partial
//! pivoting rather than Cholesky. [`Cholesky`] is still provided for
//! covariance-form kriging and for tests, and [`QrDecomposition`] backs the
//! least-squares variogram-model fit.
//!
//! The crate is deliberately dependency-free: the Rust Gaussian-process /
//! geostatistics ecosystem is thin, so everything the paper reproduction
//! needs is implemented from scratch and tested here.
//!
//! # Examples
//!
//! ```
//! use krigeval_linalg::{Matrix, LuDecomposition};
//!
//! # fn main() -> Result<(), krigeval_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[3.0, 4.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels (substitution loops, butterfly passes, separable
// filters) read several arrays at one index; explicit index loops are the
// clearest form for them.
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod error;
pub mod ldlt;
pub mod lu;
mod matrix;
pub mod qr;
mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use ldlt::LdltWorkspace;
pub use lu::{lu_solve, LuDecomposition};
pub use matrix::Matrix;
pub use qr::{least_squares, QrDecomposition};
pub use vector::{dot, norm_l1, norm_l2, norm_linf};
