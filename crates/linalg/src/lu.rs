//! LU decomposition with partial pivoting.
//!
//! This is the solver the kriging system actually uses: the ordinary-kriging
//! matrix Γ (paper Eq. 9) is symmetric *indefinite* — its last diagonal entry
//! is the zero of the Lagrange row — so Cholesky cannot be applied and
//! pivoting is mandatory.

use crate::{LinalgError, Matrix};

/// LU decomposition `P·A = L·U` with partial (row) pivoting.
///
/// Follows the compact Crout/Doolittle scheme of *Numerical Recipes in C*
/// §2.3 — the reference the paper cites (\[20\]) for its kriging
/// implementation — storing `L` (unit diagonal, implicit) and `U` in a single
/// matrix.
///
/// # Examples
///
/// ```
/// use krigeval_linalg::{Matrix, LuDecomposition};
///
/// # fn main() -> Result<(), krigeval_linalg::LinalgError> {
/// // A kriging-like saddle system: zero in the bottom-right corner.
/// let a = Matrix::from_rows(&[
///     &[0.0, 1.0, 1.0],
///     &[1.0, 0.0, 1.0],
///     &[1.0, 1.0, 0.0],
/// ])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[2.0, 2.0, 2.0])?;
/// for xi in &x {
///     assert!((xi - 1.0).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    /// `perm[i]` is the original row index now stored in row `i`.
    perm: Vec<usize>,
    /// Parity of the permutation: +1.0 or -1.0, used by `det`.
    sign: f64,
}

impl LuDecomposition {
    /// Relative pivot threshold below which the matrix is declared singular.
    const SINGULAR_TOL: f64 = 1e-13;

    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` is 0×0.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/∞.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn new(a: &Matrix) -> Result<LuDecomposition, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: "square matrix".into(),
                actual: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        for i in 0..n {
            for j in 0..n {
                if !a[(i, j)].is_finite() {
                    return Err(LinalgError::NonFinite { row: i, col: j });
                }
            }
        }

        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= Self::SINGULAR_TOL * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }

        Ok(LuDecomposition { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {n}"),
                actual: format!("vector of length {}", b.len()),
            });
        }
        // Forward substitution with the permuted right-hand side (L has a
        // unit diagonal).
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{n} rows"),
                actual: format!("{} rows", b.rows()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹`.
    ///
    /// The kriging estimator (paper Eq. 10) is written `γᵢ · Γ⁻¹ · λ`; in
    /// practice we solve instead of inverting, but the explicit inverse is
    /// exposed for tests and for callers that reuse Γ⁻¹ across many
    /// prediction points.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (cannot fail for a successfully factored
    /// matrix of matching size).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Cheap condition estimate: ratio of the largest to smallest |U| pivot.
    ///
    /// This is not the true κ(A) but grows with it, and is what the hybrid
    /// evaluator uses to decide whether a kriging system needs a nugget
    /// jitter before being trusted.
    pub fn pivot_ratio(&self) -> f64 {
        let mut max = 0.0f64;
        let mut min = f64::INFINITY;
        for i in 0..self.dim() {
            let p = self.lu[(i, i)].abs();
            max = max.max(p);
            min = min.min(p);
        }
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

impl LuDecomposition {
    /// Solves `A·x = b` with one step of **iterative refinement**: after the
    /// direct solve, the residual `r = b − A·x` is computed against the
    /// *original* matrix and a correction `A·δ = r` is solved and applied.
    /// One step typically recovers most of the accuracy lost to an
    /// ill-conditioned factorization — useful for kriging systems built
    /// from near-plateau variograms.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a`'s shape or `b`'s length does
    ///   not match the factored system.
    pub fn solve_refined(&self, a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if a.shape() != (self.dim(), self.dim()) {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{0}x{0}", self.dim()),
                actual: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let mut x = self.solve(b)?;
        let ax = a.mul_vec(&x)?;
        let residual: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let correction = self.solve(&residual)?;
        for (xi, di) in x.iter_mut().zip(&correction) {
            *xi += di;
        }
        Ok(x)
    }
}

/// Convenience: factor and solve `A·x = b` in one call.
///
/// # Errors
///
/// See [`LuDecomposition::new`] and [`LuDecomposition::solve`].
///
/// # Examples
///
/// ```
/// use krigeval_linalg::Matrix;
///
/// # fn main() -> Result<(), krigeval_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let x = krigeval_linalg::lu_solve(&a, &[1.0, 2.0])?;
/// let r = a.mul_vec(&x)?;
/// assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .unwrap()
            .iter()
            .zip(b)
            .map(|(r, t)| (r - t).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_well_conditioned_system() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let b = [11.0, -16.0, 17.0];
        let x = lu_solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn solves_saddle_point_system_requiring_pivoting() {
        // Leading zero pivot: plain Gaussian elimination without pivoting
        // would divide by zero. This is exactly the kriging Γ layout when the
        // first data site coincides in the variogram sense (γ(0) = 0).
        let a = Matrix::from_rows(&[&[0.0, 1.5, 1.0], &[1.5, 0.0, 1.0], &[1.0, 1.0, 0.0]]).unwrap();
        let b = [2.5, 2.5, 2.0];
        let x = lu_solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a).unwrap_err(),
            LinalgError::Singular { .. }
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            LuDecomposition::new(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            LuDecomposition::new(&a).unwrap_err(),
            LinalgError::NonFinite { row: 0, col: 1 }
        ));
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_identity_is_one() {
        let lu = LuDecomposition::new(&Matrix::identity(5)).unwrap();
        assert!((lu.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        let err = prod.sub(&Matrix::identity(3)).unwrap().max_abs();
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        let x0 = lu.solve(&[1.0, 0.0]).unwrap();
        assert!((x[(0, 0)] - x0[0]).abs() < 1e-15);
        assert!((x[(1, 0)] - x0[1]).abs() < 1e-15);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn refined_solve_is_at_least_as_accurate() {
        // An ill-conditioned (but solvable) system.
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 1.0],
            &[1.0, 1.0 + 1e-8, 1.0],
            &[1.0, 1.0, 1.0 + 1e-8],
        ])
        .unwrap();
        let x_true = [1.0, 2.0, 3.0];
        let b = a.mul_vec(&x_true).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x_plain = lu.solve(&b).unwrap();
        let x_refined = lu.solve_refined(&a, &b).unwrap();
        let err = |x: &[f64]| -> f64 { residual(&a, x, &b) };
        assert!(err(&x_refined) <= err(&x_plain) + 1e-12);
        assert!(err(&x_refined) < 1e-8);
    }

    #[test]
    fn refined_solve_validates_shapes() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu
            .solve_refined(&Matrix::identity(2), &[1.0, 2.0, 3.0])
            .is_err());
        assert!(lu.solve_refined(&a, &[1.0]).is_err());
    }

    #[test]
    fn pivot_ratio_is_one_for_identity() {
        let lu = LuDecomposition::new(&Matrix::identity(4)).unwrap();
        assert_eq!(lu.pivot_ratio(), 1.0);
    }

    #[test]
    fn pivot_ratio_grows_for_ill_conditioned() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-9]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.pivot_ratio() > 1e8);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn well_scaled_matrix(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-10.0..10.0f64, n * n).prop_map(move |v| {
                let mut m = Matrix::from_vec(n, n, v).unwrap();
                // Diagonal dominance guarantees non-singularity so the
                // property can focus on accuracy, not singular rejects.
                for i in 0..n {
                    let row_sum: f64 = m.row(i).iter().map(|x| x.abs()).sum();
                    m[(i, i)] = row_sum + 1.0;
                }
                m
            })
        }

        proptest! {
            #[test]
            fn lu_solve_residual_is_tiny(
                a in well_scaled_matrix(5),
                b in proptest::collection::vec(-10.0..10.0f64, 5),
            ) {
                let x = lu_solve(&a, &b).unwrap();
                prop_assert!(residual(&a, &x, &b) < 1e-8);
            }

            #[test]
            fn inverse_round_trips(a in well_scaled_matrix(4)) {
                let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
                let err = a.mul(&inv).unwrap()
                    .sub(&Matrix::identity(4)).unwrap()
                    .max_abs();
                prop_assert!(err < 1e-8);
            }

            #[test]
            fn det_of_transpose_matches(a in well_scaled_matrix(4)) {
                let d1 = LuDecomposition::new(&a).unwrap().det();
                let d2 = LuDecomposition::new(&a.transpose()).unwrap().det();
                prop_assert!((d1 - d2).abs() <= 1e-6 * d1.abs().max(1.0));
            }
        }
    }
}
