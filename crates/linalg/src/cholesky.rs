//! Cholesky factorization for symmetric positive-definite systems.

use crate::{LinalgError, Matrix};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// The ordinary-kriging Γ matrix is *not* positive definite (Lagrange row),
/// so kriging itself uses [`crate::LuDecomposition`]. Cholesky backs the
/// covariance-form sanity checks in the test suite and is the natural solver
/// for simple kriging (known mean), which the crate also exposes.
///
/// # Examples
///
/// ```
/// use krigeval_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), krigeval_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::new(&a)?;
/// let x = ch.solve(&[6.0, 5.0])?;
/// let back = a.mul_vec(&x)?;
/// assert!((back[0] - 6.0).abs() < 1e-12 && (back[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper part zeroed).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper triangle
    /// is checked to `1e-8 · max|a|` and rejected if violated.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square or not symmetric.
    /// * [`LinalgError::Empty`] if `a` is 0×0.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is ≤ 0.
    pub fn new(a: &Matrix) -> Result<Cholesky, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                expected: "square matrix".into(),
                actual: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if !a.is_symmetric(1e-8 * a.max_abs().max(1.0)) {
            return Err(LinalgError::ShapeMismatch {
                expected: "symmetric matrix".into(),
                actual: "asymmetric matrix".into(),
            });
        }

        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { column: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = sum / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via `L·y = b` then `Lᵀ·x = y`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {n}"),
                actual: format!("vector of length {}", b.len()),
            });
        }
        let mut y = b.to_vec();
        for i in 0..n {
            for j in 0..i {
                y[i] -= self.l[(i, j)] * y[j];
            }
            y[i] /= self.l[(i, i)];
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                y[i] -= self.l[(j, i)] * y[j];
            }
            y[i] /= self.l[(i, i)];
        }
        Ok(y)
    }

    /// Log-determinant of `A` (always finite for a valid factorization).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_spd_matrix() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let ch = Cholesky::new(&a).unwrap();
        // Known factorization: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let l = ch.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
        // Reconstruction L·Lᵀ = A.
        let back = l.mul(&l.transpose()).unwrap();
        assert!(back.sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[5.0, 2.0], &[2.0, 3.0]]).unwrap();
        let b = [1.0, 4.0];
        let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::lu_solve(&a, &b).unwrap();
        assert!((x_ch[0] - x_lu[0]).abs() < 1e-12);
        assert!((x_ch[1] - x_lu[1]).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite_kriging_matrix() {
        // Ordinary-kriging layout: zero on the last diagonal entry.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 9.0]]).unwrap();
        let ld = Cholesky::new(&a).unwrap().log_det();
        let det = crate::LuDecomposition::new(&a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let ch = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Random SPD matrix built as BᵀB + I.
        fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(-3.0..3.0f64, n * n).prop_map(move |v| {
                let b = Matrix::from_vec(n, n, v).unwrap();
                b.transpose()
                    .mul(&b)
                    .unwrap()
                    .add(&Matrix::identity(n))
                    .unwrap()
            })
        }

        proptest! {
            #[test]
            fn cholesky_reconstructs(a in spd_matrix(4)) {
                let ch = Cholesky::new(&a).unwrap();
                let l = ch.factor();
                let back = l.mul(&l.transpose()).unwrap();
                prop_assert!(back.sub(&a).unwrap().max_abs() < 1e-8);
            }

            #[test]
            fn cholesky_solve_residual_is_tiny(
                a in spd_matrix(4),
                b in proptest::collection::vec(-5.0..5.0f64, 4),
            ) {
                let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
                let r = a.mul_vec(&x).unwrap();
                for (ri, bi) in r.iter().zip(&b) {
                    prop_assert!((ri - bi).abs() < 1e-8);
                }
            }
        }
    }
}
