//! Small vector helpers shared across the workspace.
//!
//! The paper measures distances between approximation configurations with the
//! L1 norm (line 9 of Algorithms 1 and 2); [`norm_l2`] and [`norm_linf`]
//! exist because the kriging method itself only requires *a* distance, and
//! the generality claim is exercised in an ablation.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(krigeval_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L1 (Manhattan) norm of the element-wise difference `a - b`.
///
/// This is the configuration distance `||w - w_sim||₁` used throughout the
/// paper's algorithms.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(krigeval_linalg::norm_l1(&[3.0, 1.0], &[1.0, 2.0]), 3.0);
/// ```
pub fn norm_l1(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "norm_l1: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Euclidean norm of the element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(krigeval_linalg::norm_l2(&[3.0, 0.0], &[0.0, 4.0]), 5.0);
/// ```
pub fn norm_l2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "norm_l2: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Chebyshev (max) norm of the element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(krigeval_linalg::norm_linf(&[3.0, 1.0], &[1.0, 2.0]), 2.0);
/// ```
pub fn norm_linf(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "norm_linf: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[1.0, -2.0, 3.0], &[4.0, 5.0, 6.0]), 12.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms_agree_on_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(norm_l1(&a, &a), 0.0);
        assert_eq!(norm_l2(&a, &a), 0.0);
        assert_eq!(norm_linf(&a, &a), 0.0);
    }

    #[test]
    fn norm_ordering_holds() {
        // For any vectors: linf <= l2 <= l1.
        let a = [1.5, -2.0, 0.25, 4.0];
        let b = [0.0, 1.0, -1.0, 2.5];
        let (l1, l2, li) = (norm_l1(&a, &b), norm_l2(&a, &b), norm_linf(&a, &b));
        assert!(li <= l2 + 1e-12);
        assert!(l2 <= l1 + 1e-12);
    }

    #[test]
    fn l1_is_integer_on_integer_configs() {
        // Word-length vectors are integers; the L1 distance must stay exact.
        let a = [12.0, 9.0, 7.0];
        let b = [10.0, 9.0, 8.0];
        assert_eq!(norm_l1(&a, &b), 3.0);
    }
}
