//! Symmetric-indefinite LDLᵀ factorization with a reusable workspace.
//!
//! The ordinary-kriging saddle-point matrix Γ (paper Eq. 9) is symmetric
//! but indefinite — every diagonal entry of the data block is `γ(0) = 0`
//! and the Lagrange corner is zero too — so plain Cholesky and unpivoted
//! LDLᵀ both fail on the very first pivot. The classical remedy is
//! **Bunch–Kaufman partial pivoting** (the LAPACK `dsytf2`/`dsytrs`
//! scheme): symmetric row/column interchanges with a mix of 1×1 and 2×2
//! diagonal pivot blocks. It preserves symmetry (half the flops of LU on
//! the same matrix) and is backward stable on exactly this matrix class.
//!
//! Unlike [`crate::LuDecomposition`], which allocates a fresh factor per
//! system, [`LdltWorkspace`] is a **caller-owned scratch**: buffers are
//! grown once and reused across factorizations, so a steady-state caller
//! (the hybrid evaluator solving thousands of small kriging systems)
//! performs zero heap allocations after warm-up.
//!
//! # Examples
//!
//! ```
//! use krigeval_linalg::LdltWorkspace;
//!
//! # fn main() -> Result<(), krigeval_linalg::LinalgError> {
//! // A kriging-like saddle system: zero diagonal everywhere.
//! let a = [
//!     0.0, 1.5, 1.0, //
//!     1.5, 0.0, 1.0, //
//!     1.0, 1.0, 0.0,
//! ];
//! let mut ws = LdltWorkspace::new();
//! ws.factor(&a, 3)?;
//! let mut x = [2.5, 2.5, 2.0];
//! ws.solve_in_place(&mut x)?;
//! for xi in &x {
//!     assert!((xi - 1.0).abs() < 1e-12);
//! }
//! # Ok(())
//! # }
//! ```

use crate::LinalgError;

/// The Bunch–Kaufman pivot-selection constant `(1 + √17) / 8 ≈ 0.6404`,
/// which minimizes the worst-case element growth over both pivot kinds.
const ALPHA: f64 = 0.640_388_203_202_208_4;

/// Reusable workspace holding an LDLᵀ factorization of a symmetric matrix.
///
/// `factor` copies the input into an internal buffer and factorizes in
/// place; `solve_in_place` then back-substitutes any number of right-hand
/// sides. Buffers are retained between calls, so repeated factorizations
/// of same-or-smaller systems never reallocate.
#[derive(Debug, Clone, Default)]
pub struct LdltWorkspace {
    /// Dimension of the currently held factorization.
    n: usize,
    /// Row-major `n × n` working matrix; after `factor`, the lower triangle
    /// holds the multipliers of `L` and the (block) diagonal of `D`.
    a: Vec<f64>,
    /// Pivot record, LAPACK `ipiv` style in 0-based form: `piv[k] = p ≥ 0`
    /// means a 1×1 pivot with rows/columns `k ↔ p` interchanged;
    /// `piv[k] = piv[k+1] = -(p+1)` means a 2×2 pivot block at `(k, k+1)`
    /// with rows/columns `k+1 ↔ p` interchanged.
    piv: Vec<isize>,
}

impl LdltWorkspace {
    /// Relative pivot threshold below which the matrix is declared
    /// singular (matches [`crate::LuDecomposition`]'s tolerance).
    const SINGULAR_TOL: f64 = 1e-13;

    /// Creates an empty workspace; buffers are allocated lazily by
    /// [`LdltWorkspace::factor`].
    pub fn new() -> LdltWorkspace {
        LdltWorkspace::default()
    }

    /// Dimension of the factorization currently held.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Factorizes the symmetric `n × n` matrix stored row-major in `a`
    /// (only the lower triangle is read) as `P·A·Pᵀ = L·D·Lᵀ`.
    ///
    /// The input is copied into the workspace; `a` itself is not modified.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if `n == 0`.
    /// * [`LinalgError::ShapeMismatch`] if `a.len() < n·n`.
    /// * [`LinalgError::NonFinite`] if the lower triangle contains NaN/∞.
    /// * [`LinalgError::Singular`] if a pivot column is numerically zero.
    pub fn factor(&mut self, a: &[f64], n: usize) -> Result<(), LinalgError> {
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if a.len() < n * n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} elements ({n}x{n} row-major)", n * n),
                actual: format!("{} elements", a.len()),
            });
        }
        self.n = n;
        self.a.clear();
        self.a.extend_from_slice(&a[..n * n]);
        self.piv.clear();
        self.piv.resize(n, 0);

        // Scale for the relative singularity test: the largest |entry| of
        // the lower triangle (the only part the factorization reads).
        let mut scale = 1.0f64;
        for i in 0..n {
            for j in 0..=i {
                let v = self.a[i * n + j];
                if !v.is_finite() {
                    return Err(LinalgError::NonFinite { row: i, col: j });
                }
                scale = scale.max(v.abs());
            }
        }
        let tol = Self::SINGULAR_TOL * scale;

        let mut k = 0usize;
        while k < n {
            let mut kstep = 1usize;
            let absakk = self.at(k, k).abs();
            // Largest off-diagonal |entry| in column k below the diagonal.
            let (imax, colmax) = {
                let mut imax = k;
                let mut colmax = 0.0f64;
                for i in (k + 1)..n {
                    let v = self.at(i, k).abs();
                    if v > colmax {
                        colmax = v;
                        imax = i;
                    }
                }
                (imax, colmax)
            };
            if absakk.max(colmax) <= tol {
                return Err(LinalgError::Singular { pivot: k });
            }

            let kp;
            if absakk >= ALPHA * colmax {
                kp = k; // 1×1 pivot, no interchange
            } else {
                // rowmax: largest |entry| in row imax of the trailing
                // submatrix (read through the lower triangle).
                let mut rowmax = 0.0f64;
                for j in k..imax {
                    rowmax = rowmax.max(self.at(imax, j).abs());
                }
                for i in (imax + 1)..n {
                    rowmax = rowmax.max(self.at(i, imax).abs());
                }
                if absakk >= ALPHA * colmax * (colmax / rowmax) {
                    kp = k; // 1×1 pivot, no interchange
                } else if self.at(imax, imax).abs() >= ALPHA * rowmax {
                    kp = imax; // 1×1 pivot, interchange k ↔ imax
                } else {
                    kp = imax; // 2×2 pivot, interchange k+1 ↔ imax
                    kstep = 2;
                }
            }

            let kk = k + kstep - 1;
            if kp != kk {
                self.interchange(kk, kp, k, kstep, n);
            }

            if kstep == 1 {
                // A(k+1.., k+1..) -= (1/d)·c·cᵀ with c = A(k+1.., k),
                // then store the multipliers c/d in column k.
                let d_inv = 1.0 / self.at(k, k);
                for i in (k + 1)..n {
                    let cik = self.a[i * n + k];
                    if cik != 0.0 {
                        let w = cik * d_inv;
                        for j in (k + 1)..=i {
                            self.a[i * n + j] -= w * self.a[j * n + k];
                        }
                    }
                }
                for i in (k + 1)..n {
                    self.a[i * n + k] *= d_inv;
                }
                self.piv[k] = kp as isize;
            } else {
                // 2×2 pivot block D = [[A(k,k), A(k+1,k)], [·, A(k+1,k+1)]].
                if k + 2 < n {
                    let d21 = self.at(k + 1, k);
                    let d11 = self.at(k + 1, k + 1) / d21;
                    let d22 = self.at(k, k) / d21;
                    let t = 1.0 / (d11 * d22 - 1.0);
                    let d21 = t / d21;
                    for j in (k + 2)..n {
                        let wk = d21 * (d11 * self.at(j, k) - self.at(j, k + 1));
                        let wkp1 = d21 * (d22 * self.at(j, k + 1) - self.at(j, k));
                        for i in j..n {
                            self.a[i * n + j] -=
                                self.a[i * n + k] * wk + self.a[i * n + k + 1] * wkp1;
                        }
                        self.a[j * n + k] = wk;
                        self.a[j * n + k + 1] = wkp1;
                    }
                }
                let code = -(kp as isize + 1);
                self.piv[k] = code;
                self.piv[k + 1] = code;
            }
            k += kstep;
        }
        Ok(())
    }

    /// Solves `A·x = b` in place using the stored factorization.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if nothing has been factored yet.
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.n;
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("vector of length {n}"),
                actual: format!("vector of length {}", b.len()),
            });
        }

        // Forward: solve L·(D·Lᵀ·x) = P·b.
        let mut k = 0usize;
        while k < n {
            if self.piv[k] >= 0 {
                let kp = self.piv[k] as usize;
                if kp != k {
                    b.swap(k, kp);
                }
                let bk = b[k];
                for i in (k + 1)..n {
                    b[i] -= self.a[i * n + k] * bk;
                }
                b[k] = bk / self.at(k, k);
                k += 1;
            } else {
                let kp = (-self.piv[k] - 1) as usize;
                if kp != k + 1 {
                    b.swap(k + 1, kp);
                }
                let (bk, bk1) = (b[k], b[k + 1]);
                for i in (k + 2)..n {
                    b[i] -= self.a[i * n + k] * bk + self.a[i * n + k + 1] * bk1;
                }
                // Solve the 2×2 block in the numerically robust scaled form.
                let akm1k = self.at(k + 1, k);
                let akm1 = self.at(k, k) / akm1k;
                let ak = self.at(k + 1, k + 1) / akm1k;
                let denom = akm1 * ak - 1.0;
                let bkm1 = bk / akm1k;
                let bks = bk1 / akm1k;
                b[k] = (ak * bkm1 - bks) / denom;
                b[k + 1] = (akm1 * bks - bkm1) / denom;
                k += 2;
            }
        }

        // Backward: solve Lᵀ·x = y, undoing interchanges in reverse.
        let mut k = n as isize - 1;
        while k >= 0 {
            let ku = k as usize;
            if self.piv[ku] >= 0 {
                let mut sum = b[ku];
                for i in (ku + 1)..n {
                    sum -= self.a[i * n + ku] * b[i];
                }
                b[ku] = sum;
                let kp = self.piv[ku] as usize;
                if kp != ku {
                    b.swap(ku, kp);
                }
                k -= 1;
            } else {
                // 2×2 block occupies rows (ku-1, ku) seen from this end.
                let mut sum1 = b[ku];
                let mut sum0 = b[ku - 1];
                for i in (ku + 1)..n {
                    sum1 -= self.a[i * n + ku] * b[i];
                    sum0 -= self.a[i * n + ku - 1] * b[i];
                }
                b[ku] = sum1;
                b[ku - 1] = sum0;
                // Undo the factor-time interchange, which swapped the
                // block's second row (this `ku`) with `kp`.
                let kp = (-self.piv[ku] - 1) as usize;
                if kp != ku {
                    b.swap(ku, kp);
                }
                k -= 2;
            }
        }
        Ok(())
    }

    /// Solves `A·X = B` in place for many right-hand sides sharing the
    /// stored factorization.
    ///
    /// Right-hand sides live in one flat slab: RHS `r` occupies
    /// `b[r*stride .. r*stride + n]`, with `stride ≥ n` so callers can keep
    /// their rows padded/aligned. The slab length must be a whole number of
    /// rows; everything past the first `n` entries of each row is ignored.
    ///
    /// The factor is traversed **once**: the forward and backward passes walk
    /// the pivot sequence a single time with an inner loop over right-hand
    /// sides, so each factor column is streamed through cache once per
    /// pivot step instead of once per query. Every right-hand side sees the
    /// exact scalar operation sequence of [`LdltWorkspace::solve_in_place`],
    /// so the result is **bitwise identical** to `nrhs` separate single-RHS
    /// solves — the property the kriging parity suites pin.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] if nothing has been factored yet.
    /// * [`LinalgError::ShapeMismatch`] if `stride < n` or `b.len()` is not
    ///   a multiple of `stride`.
    pub fn solve_many_in_place(&self, b: &mut [f64], stride: usize) -> Result<(), LinalgError> {
        let n = self.n;
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if stride < n || !b.len().is_multiple_of(stride.max(1)) {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("row stride >= {n} and a whole number of rows"),
                actual: format!("stride {stride}, slab of {} elements", b.len()),
            });
        }
        let nrhs = b.len() / stride;
        if nrhs == 0 {
            return Ok(());
        }

        // Forward: solve L·(D·Lᵀ·X) = P·B, all right-hand sides per pivot.
        let mut k = 0usize;
        while k < n {
            if self.piv[k] >= 0 {
                let kp = self.piv[k] as usize;
                let dk = self.at(k, k);
                for r in 0..nrhs {
                    let row = &mut b[r * stride..r * stride + n];
                    if kp != k {
                        row.swap(k, kp);
                    }
                    let bk = row[k];
                    for i in (k + 1)..n {
                        row[i] -= self.a[i * n + k] * bk;
                    }
                    row[k] = bk / dk;
                }
                k += 1;
            } else {
                let kp = (-self.piv[k] - 1) as usize;
                let akm1k = self.at(k + 1, k);
                let akm1 = self.at(k, k) / akm1k;
                let ak = self.at(k + 1, k + 1) / akm1k;
                let denom = akm1 * ak - 1.0;
                for r in 0..nrhs {
                    let row = &mut b[r * stride..r * stride + n];
                    if kp != k + 1 {
                        row.swap(k + 1, kp);
                    }
                    let (bk, bk1) = (row[k], row[k + 1]);
                    for i in (k + 2)..n {
                        row[i] -= self.a[i * n + k] * bk + self.a[i * n + k + 1] * bk1;
                    }
                    // Same numerically robust scaled 2×2 solve as the
                    // single-RHS path.
                    let bkm1 = bk / akm1k;
                    let bks = bk1 / akm1k;
                    row[k] = (ak * bkm1 - bks) / denom;
                    row[k + 1] = (akm1 * bks - bkm1) / denom;
                }
                k += 2;
            }
        }

        // Backward: solve Lᵀ·X = Y, undoing interchanges in reverse.
        let mut k = n as isize - 1;
        while k >= 0 {
            let ku = k as usize;
            if self.piv[ku] >= 0 {
                let kp = self.piv[ku] as usize;
                for r in 0..nrhs {
                    let row = &mut b[r * stride..r * stride + n];
                    let mut sum = row[ku];
                    for i in (ku + 1)..n {
                        sum -= self.a[i * n + ku] * row[i];
                    }
                    row[ku] = sum;
                    if kp != ku {
                        row.swap(ku, kp);
                    }
                }
                k -= 1;
            } else {
                let kp = (-self.piv[ku] - 1) as usize;
                for r in 0..nrhs {
                    let row = &mut b[r * stride..r * stride + n];
                    let mut sum1 = row[ku];
                    let mut sum0 = row[ku - 1];
                    for i in (ku + 1)..n {
                        sum1 -= self.a[i * n + ku] * row[i];
                        sum0 -= self.a[i * n + ku - 1] * row[i];
                    }
                    row[ku] = sum1;
                    row[ku - 1] = sum0;
                    if kp != ku {
                        row.swap(ku, kp);
                    }
                }
                k -= 2;
            }
        }
        Ok(())
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Symmetric interchange of rows/columns `kk ↔ kp` within the trailing
    /// submatrix starting at `k`, in lower-triangular storage (the LAPACK
    /// `dsytf2` interchange; requires `kp > kk`).
    fn interchange(&mut self, kk: usize, kp: usize, k: usize, kstep: usize, n: usize) {
        for i in (kp + 1)..n {
            self.a.swap(i * n + kk, i * n + kp);
        }
        for j in (kk + 1)..kp {
            self.a.swap(j * n + kk, kp * n + j);
        }
        self.a.swap(kk * n + kk, kp * n + kp);
        if kstep == 2 {
            self.a.swap((k + 1) * n + k, kp * n + k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lu_solve, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn residual(a: &[f64], n: usize, x: &[f64], b: &[f64]) -> f64 {
        (0..n)
            .map(|i| {
                let ax: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
                (ax - b[i]).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Random symmetric matrix with a kriging-like zero diagonal option.
    fn random_symmetric(rng: &mut StdRng, n: usize, zero_diag: bool) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = if i == j && zero_diag {
                    0.0
                } else {
                    rng.gen_range(-5.0..5.0)
                };
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        a
    }

    #[test]
    fn solves_saddle_point_with_zero_diagonal() {
        // The exact Γ layout: zero data-block diagonal, unit border, zero
        // Lagrange corner.
        let a = [
            0.0, 2.0, 3.0, 1.0, //
            2.0, 0.0, 1.5, 1.0, //
            3.0, 1.5, 0.0, 1.0, //
            1.0, 1.0, 1.0, 0.0,
        ];
        let b = [1.0, 2.0, 3.0, 1.0];
        let mut ws = LdltWorkspace::new();
        ws.factor(&a, 4).unwrap();
        let mut x = b;
        ws.solve_in_place(&mut x).unwrap();
        assert!(residual(&a, 4, &x, &b) < 1e-12);
    }

    #[test]
    fn matches_lu_on_random_symmetric_systems() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ws = LdltWorkspace::new();
        for trial in 0..200 {
            let n = rng.gen_range(1..12);
            let zero_diag = trial % 2 == 0 && n > 1;
            let a = random_symmetric(&mut rng, n, zero_diag);
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let m = Matrix::from_vec(n, n, a.clone()).unwrap();
            let lu = lu_solve(&m, &b);
            match ws.factor(&a, n) {
                Ok(()) => {
                    let mut x = b.clone();
                    ws.solve_in_place(&mut x).unwrap();
                    let r = residual(&a, n, &x, &b);
                    assert!(r < 1e-8, "trial {trial} n {n}: residual {r}");
                    if let Ok(xlu) = lu {
                        for (xi, yi) in x.iter().zip(&xlu) {
                            assert!(
                                (xi - yi).abs() < 1e-6 * xi.abs().max(1.0),
                                "trial {trial}: {xi} vs {yi}"
                            );
                        }
                    }
                }
                Err(LinalgError::Singular { .. }) => {
                    // Both solvers must agree the system is degenerate.
                    assert!(lu.is_err(), "trial {trial}: LDLT singular but LU solved");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn workspace_is_reusable_across_sizes() {
        let mut ws = LdltWorkspace::new();
        let a3 = [
            0.0, 1.5, 1.0, //
            1.5, 0.0, 1.0, //
            1.0, 1.0, 0.0,
        ];
        ws.factor(&a3, 3).unwrap();
        assert_eq!(ws.dim(), 3);
        let mut x = [2.5, 2.5, 2.0];
        ws.solve_in_place(&mut x).unwrap();
        assert!(residual(&a3, 3, &x, &[2.5, 2.5, 2.0]) < 1e-12);

        let a2 = [
            2.0, 1.0, //
            1.0, 3.0,
        ];
        ws.factor(&a2, 2).unwrap();
        assert_eq!(ws.dim(), 2);
        let mut y = [3.0, 4.0];
        ws.solve_in_place(&mut y).unwrap();
        assert!((y[0] - 1.0).abs() < 1e-12 && (y[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_factorizations_do_not_grow_buffers() {
        let mut ws = LdltWorkspace::new();
        let a = [
            0.0, 2.0, 1.0, //
            2.0, 0.0, 1.0, //
            1.0, 1.0, 0.0,
        ];
        ws.factor(&a, 3).unwrap();
        let cap_a = ws.a.capacity();
        let cap_p = ws.piv.capacity();
        for _ in 0..50 {
            ws.factor(&a, 3).unwrap();
        }
        assert_eq!(ws.a.capacity(), cap_a);
        assert_eq!(ws.piv.capacity(), cap_p);
    }

    #[test]
    fn detects_singularity() {
        // Rank-1 symmetric matrix.
        let a = [
            1.0, 2.0, //
            2.0, 4.0,
        ];
        let mut ws = LdltWorkspace::new();
        assert!(matches!(
            ws.factor(&a, 2).unwrap_err(),
            LinalgError::Singular { .. }
        ));
        // Exact zero matrix.
        let z = [0.0; 9];
        assert!(matches!(
            ws.factor(&z, 3).unwrap_err(),
            LinalgError::Singular { .. }
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut ws = LdltWorkspace::new();
        assert!(matches!(ws.factor(&[], 0).unwrap_err(), LinalgError::Empty));
        assert!(matches!(
            ws.factor(&[1.0, 2.0], 2).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        let a = [1.0, f64::NAN, f64::NAN, 1.0];
        // NaN in the lower triangle is caught (upper is never read).
        assert!(matches!(
            ws.factor(&a, 2).unwrap_err(),
            LinalgError::NonFinite { row: 1, col: 0 }
        ));
        // Solve before factor / with the wrong length.
        let fresh = LdltWorkspace::new();
        assert!(fresh.solve_in_place(&mut [1.0]).is_err());
        ws.factor(&[2.0, 0.0, 0.0, 2.0], 2).unwrap();
        assert!(ws.solve_in_place(&mut [1.0]).is_err());
    }

    #[test]
    fn identity_solves_exactly() {
        let n = 6;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let mut ws = LdltWorkspace::new();
        ws.factor(&a, n).unwrap();
        let mut b: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let expect = b.clone();
        ws.solve_in_place(&mut b).unwrap();
        assert_eq!(b, expect);
    }

    #[test]
    fn multi_rhs_is_bitwise_identical_to_single_rhs() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut ws = LdltWorkspace::new();
        for trial in 0..100 {
            let n = rng.gen_range(1..14);
            let zero_diag = trial % 2 == 0 && n > 1;
            let a = random_symmetric(&mut rng, n, zero_diag);
            if ws.factor(&a, n).is_err() {
                continue;
            }
            let nrhs = rng.gen_range(1usize..9);
            let stride = n + rng.gen_range(0usize..4); // padded rows must be fine
            let mut slab = vec![0.0; nrhs * stride];
            for row in slab.chunks_mut(stride) {
                for v in row.iter_mut() {
                    *v = rng.gen_range(-4.0..4.0);
                }
            }
            let mut expect = slab.clone();
            for row in expect.chunks_mut(stride) {
                ws.solve_in_place(&mut row[..n]).unwrap();
            }
            ws.solve_many_in_place(&mut slab, stride).unwrap();
            for (r, (got, want)) in slab.chunks(stride).zip(expect.chunks(stride)).enumerate() {
                for i in 0..n {
                    assert_eq!(
                        got[i].to_bits(),
                        want[i].to_bits(),
                        "trial {trial} rhs {r} entry {i}: {} vs {}",
                        got[i],
                        want[i]
                    );
                }
                // Padding past n is untouched.
                assert_eq!(&got[n..], &want[n..]);
            }
        }
    }

    #[test]
    fn solve_many_rejects_bad_shapes() {
        let mut ws = LdltWorkspace::new();
        assert!(matches!(
            ws.solve_many_in_place(&mut [1.0], 1).unwrap_err(),
            LinalgError::Empty
        ));
        ws.factor(&[2.0, 1.0, 1.0, 3.0], 2).unwrap();
        // Stride shorter than the dimension.
        assert!(ws.solve_many_in_place(&mut [1.0, 2.0], 1).is_err());
        // Slab not a whole number of rows.
        assert!(ws.solve_many_in_place(&mut [1.0, 2.0, 3.0], 2).is_err());
        // Empty slab is a no-op.
        ws.solve_many_in_place(&mut [], 2).unwrap();
    }

    #[test]
    fn large_kriging_shaped_systems_are_accurate() {
        // Realistic Γ: off-diagonal entries γ(d) from an increasing model,
        // unit border, zero corner — the exact hot-path matrix at n = 32.
        let mut rng = StdRng::seed_from_u64(99);
        let mut ws = LdltWorkspace::new();
        for _ in 0..20 {
            let n = 33usize; // 32 sites + Lagrange row
            let sites: Vec<Vec<f64>> = (0..n - 1)
                .map(|_| (0..10).map(|_| f64::from(rng.gen_range(4..15))).collect())
                .collect();
            let mut a = vec![0.0; n * n];
            for i in 0..n - 1 {
                for j in 0..n - 1 {
                    if i != j {
                        let d: f64 = sites[i]
                            .iter()
                            .zip(&sites[j])
                            .map(|(x, y)| (x - y).abs())
                            .sum();
                        a[i * n + j] = 0.5 * d; // linear variogram
                    }
                }
                a[i * n + (n - 1)] = 1.0;
                a[(n - 1) * n + i] = 1.0;
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..30.0)).collect();
            if ws.factor(&a, n).is_err() {
                continue; // duplicate random sites — legitimately singular
            }
            let mut x = b.clone();
            ws.solve_in_place(&mut x).unwrap();
            let r = residual(&a, n, &x, &b);
            assert!(r < 1e-7 * 30.0 * n as f64, "residual {r}");
        }
    }
}
