//! Offline stand-in for `rand` 0.8.
//!
//! Covers exactly the slice of the API this workspace uses: a seedable
//! `StdRng` plus `Rng::gen_range` over integer and float ranges. The
//! generator is xoshiro256++ seeded through splitmix64 — a different stream
//! than the real `StdRng` (ChaCha12), but every use in this workspace is
//! seeded explicitly and asserts statistical/relative properties, not golden
//! values, so only determinism matters: identical seeds give identical
//! streams on every platform and run.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit random source (stub counterpart of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience methods over [`RngCore`] (stub counterpart of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive; integer or
    /// float).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method
/// without the rejection step — bias is ≤ span/2⁶⁴, irrelevant for test
/// data generation).
fn sample_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    (((u128::from(rng.next_u64())) * u128::from(span)) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = sample_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; clamp back
                // inside the half-open range.
                if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * 1e-9) } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Generators; mirrors `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the real crate's ChaCha12 — see the crate docs for why that is
    /// acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference
            // implementation, transliterated).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-64i32..64);
            assert!((-64..64).contains(&v));
            let w = rng.gen_range(2i32..17);
            assert!((2..17).contains(&w));
            let q = rng.gen_range(0usize..=5);
            assert!(q <= 5);
        }
    }

    #[test]
    fn int_ranges_hit_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 15];
        for _ in 0..10_000 {
            seen[(rng.gen_range(2i32..17) - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&v));
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn float_mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
