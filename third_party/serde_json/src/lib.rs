//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text over the vendored serde's [`Value`] tree.
//! Numbers keep their integer/float identity (`u64`/`i64`/`f64`), floats use
//! Rust's shortest-roundtrip `{}` formatting (equivalent to the real crate's
//! `float_roundtrip` feature), and object keys keep insertion order, so
//! output is deterministic.

pub use serde::{Number, Value};

mod parse;
mod print;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }

    pub(crate) fn at(message: impl Into<String>, offset: usize) -> Error {
        Error {
            message: format!("{} at byte {offset}", message.into()),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the types this workspace serializes; the `Result` mirrors
/// the real serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print::write_value(&mut out, &value.serialize_to_value());
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent, as the
/// real serde_json).
///
/// # Errors
///
/// Never fails for the types this workspace serializes.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print::write_value_pretty(&mut out, &value.serialize_to_value(), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON to an `io::Write` sink.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the parsed shape does not
/// match `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::deserialize_from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_print_as_json() {
        assert_eq!(to_string(&Value::Null).unwrap(), "null");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 2.5e17, f64::MAX, -0.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn integral_floats_keep_a_float_marker() {
        // 2.0 must not print as "2": it would come back as an integer and
        // change Value equality.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: Value = from_str("2.0").unwrap();
        assert_eq!(back, Value::Number(Number::Float(2.0)));
    }

    #[test]
    fn non_finite_floats_print_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn arrays_and_objects_round_trip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("fir".to_string())),
            (
                "levels".to_string(),
                Value::Array(vec![
                    Value::Number(Number::PosInt(4)),
                    Value::Number(Number::PosInt(9)),
                ]),
            ),
            ("model".to_string(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"name":"fir","levels":[4,9],"model":null}"#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_indents() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::Bool(true)]),
        )]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    true\n  ]\n}"
        );
    }

    #[test]
    fn parses_whitespace_escapes_and_unicode() {
        let v: Value = from_str(" { \"k\" : \"\\u0041\\t\\\\\" , \"n\" : -12e2 } ").unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("A\t\\"));
        assert_eq!(v.get("n"), Some(&Value::Number(Number::Float(-1200.0))));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn large_u64_survives() {
        let text = to_string(&u64::MAX).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }
}
