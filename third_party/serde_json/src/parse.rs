//! A small recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::{Number, Value};

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", byte as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(Error::at("unexpected character", self.pos)),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(Error::at("lone surrogate", self.pos));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::at("invalid low surrogate", self.pos));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(Error::at("invalid code point", self.pos)),
                            }
                            continue;
                        }
                        _ => return Err(Error::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::at("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::at("invalid \\u escape", self.pos))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| Error::at("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
            // Integer out of 64-bit range: fall back to f64 like serde_json's
            // arbitrary_precision-off default.
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::at("invalid number", start))
    }
}
