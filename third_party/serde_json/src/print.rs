//! JSON text output: compact and pretty writers over [`Value`].

use serde::{Number, Value};

pub(crate) fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_value_pretty(out: &mut String, value: &Value, depth: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                indent(out, depth + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match *n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(f) => {
            if !f.is_finite() {
                // JSON has no NaN/Infinity; the real serde_json errors here,
                // but for diagnostics output null is friendlier than a panic.
                out.push_str("null");
            } else if f == f.trunc() && f.abs() < 1e16 {
                // Keep a ".0" marker so the value re-parses as a float.
                let _ = write!(out, "{f:.1}");
            } else {
                // Rust's `{}` for f64 is shortest-roundtrip.
                let _ = write!(out, "{f}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
