//! Offline stand-in for `serde_derive`.
//!
//! The build container has no network access and no vendored crates.io
//! sources, so the workspace ships a minimal, API-compatible subset of the
//! serde ecosystem under `third_party/` (see `third_party/README.md`).
//!
//! This proc-macro crate implements `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the vendored `serde` crate's value-tree
//! traits. It parses the item token stream by hand (no `syn`/`quote`) and
//! supports exactly the shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums whose variants are unit, named-field, or tuple — serialized with
//!   serde's externally-tagged representation (`"Variant"` /
//!   `{"Variant": {...}}`).
//!
//! Generic type parameters and `#[serde(...)]` attributes are *not*
//! supported; deriving on such an item produces a compile error naming this
//! file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let generated = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("::core::compile_error!({:?});", msg),
    };
    generated
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive stub produced unparsable code: {e}\n{generated}"))
}

/// The shapes we can derive for.
enum Item {
    Named {
        name: String,
        fields: Vec<String>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Unit {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Named { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generic type `{name}` \
             (see third_party/serde_derive/src/lib.rs)"
        ));
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Named {
                name,
                fields: parse_named_fields(g.stream())?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Tuple {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Unit { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past any `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Skips a type (or any token run) up to the next comma at angle-bracket
/// depth zero; returns the index *of* that comma or `toks.len()`.
fn skip_to_toplevel_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while let Some(tok) = toks.get(i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    loop {
        i = skip_attrs_and_vis(&toks, i);
        let Some(tok) = toks.get(i) else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("expected field name, found {tok:?}"));
        };
        fields.push(id.to_string());
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        i = skip_to_toplevel_comma(&toks, i);
        i += 1; // past the comma (or the end)
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        i = skip_to_toplevel_comma(&toks, i);
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    loop {
        i = skip_attrs_and_vis(&toks, i);
        let Some(tok) = toks.get(i) else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("expected variant name, found {tok:?}"));
        };
        let name = id.to_string();
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Named {
                    name,
                    fields: parse_named_fields(g.stream())?,
                });
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple {
                    name,
                    arity: count_tuple_fields(g.stream()),
                });
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip an optional explicit discriminant, then the separating comma.
        i = skip_to_toplevel_comma(&toks, i);
        i += 1;
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Named { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::serialize_to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Object(__fields)\n}}\n}}"
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::serialize_to_value(&self.0)\n}}\n}}"
        ),
        Item::Tuple { name, arity } => {
            let items: String = (0..*arity)
                .map(|k| format!("::serde::Serialize::serialize_to_value(&self.{k}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Array(vec![{items}])\n}}\n}}"
            )
        }
        Item::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_to_value(&self) -> ::serde::Value {{\n\
             ::serde::Value::Null\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => {
                        format!("{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n")
                    }
                    Variant::Named { name: vn, fields } => {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__fields.push(({f:?}.to_string(), \
                                     ::serde::Serialize::serialize_to_value({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\n\
                             ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Value::Object(__fields))])\n}}\n"
                        )
                    }
                    Variant::Tuple { name: vn, arity: 1 } => format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::serialize_to_value(__f0))]),\n"
                    ),
                    Variant::Tuple { name: vn, arity } => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), \
                             ::serde::Value::Array(vec![{items}]))]),\n",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n}}\n}}"
            )
        }
    }
}

fn named_field_reads(owner: &str, fields: &[String], src: &str) -> String {
    // A missing key first tries to deserialize from `Null` — which succeeds
    // exactly for types with a null representation (`Option<T>` → `None`) —
    // so adding `Option` fields to a struct stays backward-compatible with
    // JSON written before the field existed. All other types still report
    // the missing field.
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match ::serde::__get_field({src}, {f:?}) {{\n\
                 Some(__x) => ::serde::Deserialize::deserialize_from_value(__x)?,\n\
                 None => match ::serde::Deserialize::deserialize_from_value(\
                 &::serde::Value::Null) {{\n\
                 ::core::result::Result::Ok(__d) => __d,\n\
                 ::core::result::Result::Err(_) => return ::core::result::Result::Err(\
                 ::serde::DeError::missing_field({f:?}, {owner:?})),\n}},\n}},\n"
            )
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Named { name, fields } => {
            let reads = named_field_reads(name, fields, "__obj");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_from_value(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                 ::core::result::Result::Ok({name} {{\n{reads}\n}})\n}}\n}}"
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_from_value(__v: &::serde::Value) -> \
             ::core::result::Result<Self, ::serde::DeError> {{\n\
             ::core::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_from_value(__v)?))\n}}\n}}"
        ),
        Item::Tuple { name, arity } => {
            let reads: String = (0..*arity)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::deserialize_from_value(\
                         __items.get({k}).ok_or_else(|| \
                         ::serde::DeError::expected(\"array element\", {name:?}))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_from_value(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 let __items = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                 ::core::result::Result::Ok({name}({reads}))\n}}\n}}"
            )
        }
        Item::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_from_value(_: &::serde::Value) -> \
             ::core::result::Result<Self, ::serde::DeError> {{\n\
             ::core::result::Result::Ok({name})\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    _ => None,
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Named { name: vn, fields } => {
                        let reads = named_field_reads(name, fields, "__obj");
                        Some(format!(
                            "{vn:?} => {{\nlet __obj = __val.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n{reads}\n}})\n}}\n"
                        ))
                    }
                    Variant::Tuple { name: vn, arity: 1 } => Some(format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_from_value(__val)?)),\n"
                    )),
                    Variant::Tuple { name: vn, arity } => {
                        let reads: String = (0..*arity)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::deserialize_from_value(\
                                     __items.get({k}).ok_or_else(|| \
                                     ::serde::DeError::expected(\"array element\", {name:?}))?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{vn:?} => {{\nlet __items = __val.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                             ::core::result::Result::Ok({name}::{vn}({reads}))\n}}\n"
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_from_value(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, {name:?})),\n}},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __val) = &__entries[0];\n\
                 match __key.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, {name:?})),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::DeError::expected(\
                 \"variant string or single-key object\", {name:?})),\n}}\n}}\n}}"
            )
        }
    }
}
