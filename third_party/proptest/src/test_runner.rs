//! Case runner support: configuration, the deterministic per-case RNG, and
//! the error type `prop_assert!` returns.

/// Runner configuration (stub counterpart of
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; keep that so properties get the
        // coverage their tolerances were written against.
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the case with `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator: the stream is a pure function of (test name,
/// case index), so every failure reproduces without persisted regressions.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The RNG for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
