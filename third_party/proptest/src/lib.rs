//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range and tuple
//! strategies, and `collection::{vec, btree_set}`.
//!
//! Differences from the real crate, deliberate for an offline stub:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message's seed and case index) but is not minimized.
//! * **Deterministic cases.** Each test's stream is a pure function of the
//!   test name and case index, so failures reproduce exactly across runs
//!   and machines — there is no `proptest-regressions` persistence because
//!   none is needed.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn` runs `ProptestConfig::cases` times
/// with fresh inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( @cfg($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        );
                    )*
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking
/// directly (the runner adds the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!($($fmt)+),
                ),
            );
        }
    };
}

/// Discards the current case when `cond` does not hold. The real crate
/// counts rejections and fails after too many; this stub simply skips the
/// case, which is equivalent for the low rejection rates the workspace's
/// properties have.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn int_ranges_in_bounds(x in -64i32..64, y in 2i32..17) {
            prop_assert!((-64..64).contains(&x));
            prop_assert!((2..17).contains(&y));
        }

        #[test]
        fn float_ranges_in_bounds(x in -8.0f64..8.0) {
            prop_assert!((-8.0..8.0).contains(&x));
        }

        #[test]
        fn prop_map_applies(v in (0i32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((0..20).contains(&v));
        }

        #[test]
        fn tuples_generate_componentwise(
            (a, b) in (-100.0f64..100.0, 0.0f64..50.0),
        ) {
            prop_assert!((-100.0..100.0).contains(&a));
            prop_assert!((0.0..50.0).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn config_override_is_accepted(x in 0i32..5) {
            prop_assert!((0..5).contains(&x));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = 0i64..1_000_000_000;
        let a: Vec<i64> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::TestRng::for_case("t", i)))
            .collect();
        let b: Vec<i64> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::TestRng::for_case("t", i)))
            .collect();
        assert_eq!(a, b);
        let c: Vec<i64> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::TestRng::for_case("u", i)))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_context() {
        proptest! {
            #[test]
            fn always_fails(x in 0i32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
