//! The [`Strategy`] trait and the built-in range/tuple/map strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` (stub counterpart of
/// `proptest::strategy::Strategy`, without shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy that post-processes this one's values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value (stub counterpart of
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}
