//! Collection strategies: `vec` and `btree_set` with flexible size specs.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// How many elements a collection strategy produces (stub counterpart of
/// `proptest::collection::SizeRange`): an inclusive-lower, exclusive-upper
/// bound pair.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.min < self.max_exclusive);
        let span = (self.max_exclusive - self.min) as u64;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// A strategy for `Vec<E::Value>` with a size drawn from `size`.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeSet<E::Value>` with a size drawn from `size`.
///
/// As in the real crate, the element strategy must be able to produce enough
/// distinct values to reach the minimum size; generation panics after a
/// bounded number of duplicate draws otherwise.
pub fn btree_set<E>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
where
    E: Strategy,
    E::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E> Strategy for BTreeSetStrategy<E>
where
    E: Strategy,
    E::Value: Ord,
{
    type Value = BTreeSet<E::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = 100 * (target + 1);
        while set.len() < target {
            set.insert(self.element.generate(rng));
            attempts += 1;
            assert!(
                attempts < max_attempts,
                "btree_set strategy could not reach {target} distinct elements \
                 after {attempts} draws"
            );
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_fixed_size_is_exact() {
        let s = vec(-10.0f64..10.0, 25usize);
        let mut rng = TestRng::for_case("vec_fixed", 0);
        assert_eq!(s.generate(&mut rng).len(), 25);
    }

    #[test]
    fn vec_ranged_size_stays_in_range() {
        let s = vec(0i32..5, 1..50);
        for case in 0..200 {
            let mut rng = TestRng::for_case("vec_ranged", case);
            let v = s.generate(&mut rng);
            assert!((1..50).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn btree_set_reaches_target_with_distinct_elements() {
        let s = btree_set(-20i32..20, 3..8);
        for case in 0..200 {
            let mut rng = TestRng::for_case("btree", case);
            let set = s.generate(&mut rng);
            assert!((3..8).contains(&set.len()), "len {}", set.len());
        }
    }
}
