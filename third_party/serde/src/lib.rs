//! Offline stand-in for `serde`.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal, API-compatible subset of serde (see `third_party/README.md`).
//! Instead of the real crate's visitor-based zero-copy architecture, this
//! stub round-trips everything through an owned JSON-like [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`Value`];
//! * the vendored `serde_json` prints/parses [`Value`] as JSON text.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are re-exported
//! from the vendored `serde_derive` and cover non-generic structs and enums
//! with serde's externally-tagged enum representation, which keeps the JSON
//! written by this workspace byte-compatible with the real serde for the
//! types it contains.

pub use serde_derive::{Deserialize, Serialize};

// The traits deliberately share the derive macros' names, exactly as in the
// real serde crate (trait and macro live in different namespaces).
mod value;

pub use value::{Number, Value};

/// Deserialization error: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An arbitrary error message.
    pub fn custom(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError {
            message: format!("expected {what} while deserializing {ty}"),
        }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError {
            message: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> DeError {
        DeError {
            message: format!("unknown variant `{variant}` of {ty}"),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree (stub counterpart of
/// `serde::Serialize`).
pub trait Serialize {
    /// Converts to the intermediate value tree.
    fn serialize_to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree (stub counterpart of
/// `serde::Deserialize` / `DeserializeOwned`).
pub trait Deserialize: Sized {
    /// Converts from the intermediate value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError>;
}

/// Ordered-object field lookup used by the derive macros.
#[doc(hidden)]
pub fn __get_field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

impl Deserialize for usize {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        let n = value
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", "usize"))?;
        usize::try_from(n).map_err(|_| DeError::expected("in-range integer", "usize"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_to_value(&self) -> Value {
        (*self as i64).serialize_to_value()
    }
}

impl Deserialize for isize {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        let n = value
            .as_i64()
            .ok_or_else(|| DeError::expected("integer", "isize"))?;
        isize::try_from(n).map_err(|_| DeError::expected("in-range integer", "isize"))
    }
}

impl Serialize for f64 {
    fn serialize_to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn serialize_to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn serialize_to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize_to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_to_value(&self) -> Value {
        (**self).serialize_to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_to_value(&self) -> Value {
        (**self).serialize_to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        T::deserialize_from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_to_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_to_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_to_value(),
            self.1.serialize_to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => Ok((
                A::deserialize_from_value(&items[0])?,
                B::deserialize_from_value(&items[1])?,
            )),
            _ => Err(DeError::expected("2-element array", "tuple")),
        }
    }
}

impl Serialize for Value {
    fn serialize_to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            i32::deserialize_from_value(&7i32.serialize_to_value()),
            Ok(7)
        );
        assert_eq!(
            i32::deserialize_from_value(&(-7i32).serialize_to_value()),
            Ok(-7)
        );
        assert_eq!(
            u64::deserialize_from_value(&u64::MAX.serialize_to_value()),
            Ok(u64::MAX)
        );
        assert_eq!(
            f64::deserialize_from_value(&1.5f64.serialize_to_value()),
            Ok(1.5)
        );
        assert_eq!(
            String::deserialize_from_value(&"hi".to_string().serialize_to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn integers_deserialize_as_floats() {
        // JSON "3" must satisfy an f64 field.
        let v = 3i32.serialize_to_value();
        assert_eq!(f64::deserialize_from_value(&v), Ok(3.0));
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<Vec<i32>> = Some(vec![1, -2, 3]);
        let tree = v.serialize_to_value();
        assert_eq!(Option::<Vec<i32>>::deserialize_from_value(&tree), Ok(v));
        let none: Option<i32> = None;
        assert_eq!(none.serialize_to_value(), Value::Null);
        assert_eq!(
            Option::<i32>::deserialize_from_value(&Value::Null),
            Ok(None)
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        let big = Value::Number(Number::PosInt(300));
        assert!(u8::deserialize_from_value(&big).is_err());
        let neg = Value::Number(Number::NegInt(-1));
        assert!(u32::deserialize_from_value(&neg).is_err());
    }
}
