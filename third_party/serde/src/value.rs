//! The owned JSON-like value tree the stub serde serializes through.

/// A JSON number, kept in the widest lossless representation so `u64`
/// counters and negative integers survive a round trip exactly (the real
/// serde_json does the same).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (always possible; large integers may round).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64`, if it is a non-negative integer (floats qualify
    /// when they are integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) if f >= 0.0 && f <= u64::MAX as f64 && f.fract() == 0.0 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An owned JSON value. Objects preserve insertion order (a `Vec` of pairs,
/// not a map), which keeps serialization deterministic — the engine's JSONL
/// determinism tests rely on this.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` if this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup by key (linear; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}
