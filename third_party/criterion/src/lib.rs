//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/builder surface the workspace's benches compile against
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`) and
//! measures plain wall-clock medians instead of criterion's statistical
//! machinery: each benchmark is auto-calibrated to a target time, timed over
//! a handful of batches, and reported as the median batch mean on stdout.
//! There are no HTML reports, baselines, or outlier analysis.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` interchangeably with
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver (stub counterpart of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 30,
            target_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the total measurement time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Criterion {
        self.target_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let target_time = self.target_time;
        run_one(name, sample_size, target_time, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the measurement time budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&label, sample_size, self.criterion.target_time, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; prints a blank line).
    pub fn finish(self) {
        println!();
    }
}

/// A benchmark label, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark id is expected (`&str` or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Hands the routine under test to the timer.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(label: &str, sample_size: usize, target_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count whose batch takes roughly
    // target_time / sample_size.
    let mut iters: u64 = 1;
    let per_batch = target_time / sample_size as u32;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_batch || b.elapsed >= Duration::from_millis(100) || iters >= 1 << 30 {
            let scale = if b.elapsed.is_zero() {
                16.0
            } else {
                per_batch.as_secs_f64() / b.elapsed.as_secs_f64()
            };
            iters = ((iters as f64) * scale.clamp(1.0, 16.0)).max(1.0) as u64;
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "  {label}: median {} / iter  [min {}, max {}]  ({iters} iters x {sample_size} batches)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Criterion {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(5));
        c
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = tiny_config();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        assert!(ran);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = tiny_config();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7u64), &7u64, |b, &n| {
            seen = n;
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fit", 4).label, "fit/4");
        assert_eq!(BenchmarkId::from_parameter(12).label, "12");
    }
}
